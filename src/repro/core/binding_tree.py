"""Binding trees: spanning trees over the gender set.

Algorithm 1 applies one Gale-Shapley binding per edge of a spanning
tree T on the genders.  The *shape* of T never affects stability
(Theorem 2) but drives everything else the paper studies:

* which stable matching comes out (different trees, different
  matchings — Section IV.B);
* how many trees there are (Cayley: k^(k-2));
* how parallelizable the bindings are (Corollary 1: Δ(T) rounds on an
  EREW PRAM; Corollary 2: a chain needs 2);
* whether the weakened blocking condition is survived (Theorem 5:
  bitonic trees only).

Edges are **ordered and oriented**: ``(proposer_gender,
responder_gender)`` in binding order, since GS favors the proposer side.
Two trees with the same undirected edge set but different orientations
or orderings compare equal under :meth:`BindingTree.undirected_edges`
but may produce different matchings.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.exceptions import InvalidBindingTreeError
from repro.utils.ordering import is_bitonic
from repro.utils.rng import as_rng

__all__ = ["BindingTree"]


class BindingTree:
    """A spanning tree on genders ``0..k-1`` with oriented, ordered edges.

    Parameters
    ----------
    k:
        Number of genders.
    edges:
        ``k-1`` pairs ``(proposer, responder)``.  They must form a
        spanning tree (connected, acyclic) of the k genders.

    Examples
    --------
    >>> t = BindingTree.chain(4)
    >>> t.edges
    ((0, 1), (1, 2), (2, 3))
    >>> t.max_degree
    2
    >>> BindingTree.star(4).max_degree
    3
    """

    __slots__ = ("k", "edges", "_adj")

    def __init__(self, k: int, edges: Sequence[tuple[int, int]]) -> None:
        if k < 2:
            raise InvalidBindingTreeError(f"a binding tree needs k >= 2 genders, got {k}")
        edges = tuple((int(a), int(b)) for a, b in edges)
        if len(edges) != k - 1:
            raise InvalidBindingTreeError(
                f"a spanning tree on {k} genders has {k - 1} edges, got {len(edges)}"
            )
        adj: dict[int, list[int]] = {g: [] for g in range(k)}
        seen: set[frozenset[int]] = set()
        for a, b in edges:
            if not (0 <= a < k and 0 <= b < k):
                raise InvalidBindingTreeError(f"edge ({a}, {b}) references unknown gender")
            if a == b:
                raise InvalidBindingTreeError(f"self-loop on gender {a}")
            key = frozenset((a, b))
            if key in seen:
                raise InvalidBindingTreeError(f"duplicate edge between {a} and {b}")
            seen.add(key)
            adj[a].append(b)
            adj[b].append(a)
        # connectivity check (k-1 edges + connected => tree)
        stack, visited = [0], {0}
        while stack:
            g = stack.pop()
            for nb in adj[g]:
                if nb not in visited:
                    visited.add(nb)
                    stack.append(nb)
        if len(visited) != k:
            missing = sorted(set(range(k)) - visited)
            raise InvalidBindingTreeError(
                f"edges do not span all genders; unreachable: {missing}"
            )
        self.k = k
        self.edges = edges
        self._adj = {g: tuple(nbs) for g, nbs in adj.items()}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def chain(cls, k: int, order: Sequence[int] | None = None) -> "BindingTree":
        """The linear binding tree (Δ = 2, Corollary 2's shape).

        ``order`` permutes the genders along the chain; default is
        ``0-1-2-...``.
        """
        if order is None:
            order = list(range(k))
        order = [int(g) for g in order]
        if sorted(order) != list(range(k)):
            raise InvalidBindingTreeError(f"order must permute 0..{k - 1}, got {order}")
        return cls(k, [(order[i], order[i + 1]) for i in range(k - 1)])

    @classmethod
    def star(cls, k: int, center: int = 0) -> "BindingTree":
        """The star tree: every binding shares ``center`` (Δ = k-1)."""
        if not 0 <= center < k:
            raise InvalidBindingTreeError(f"center {center} out of range for k={k}")
        return cls(k, [(center, g) for g in range(k) if g != center])

    @classmethod
    def random(cls, k: int, seed: int | None | np.random.Generator = None) -> "BindingTree":
        """Uniform random labeled tree (via a random Prüfer sequence)."""
        rng = as_rng(seed)
        if k == 2:
            return cls(2, [(0, 1)])
        from repro.analysis.counting import prufer_to_tree

        seq = rng.integers(0, k, size=k - 2).tolist()
        return cls(k, prufer_to_tree(seq, k))

    @classmethod
    def from_spec(
        cls,
        k: int,
        spec: str,
        seed: int | None | np.random.Generator = None,
    ) -> "BindingTree":
        """Build a tree from a textual spec (the CLI / engine syntax).

        ``spec`` is ``"chain"``, ``"star"``, ``"random"`` (seeded by
        ``seed``), or a comma-separated list of ``"a-b"`` oriented edges
        where ``a`` proposes to ``b`` (e.g. ``"0-1,1-2"``).

        >>> BindingTree.from_spec(3, "2-1,1-0").edges
        ((2, 1), (1, 0))
        """
        if spec == "chain":
            return cls.chain(k)
        if spec == "star":
            return cls.star(k)
        if spec == "random":
            return cls.random(k, seed)
        edges = []
        for part in spec.split(","):
            a, sep, b = part.partition("-")
            try:
                if not sep:
                    raise InvalidBindingTreeError("missing '-'")
                edges.append((int(a), int(b)))
            except ValueError as exc:
                raise InvalidBindingTreeError(
                    f"bad tree spec {spec!r}: expected chain|star|random or "
                    f"comma-separated 'a-b' edges ({exc})"
                ) from exc
        return cls(k, edges)

    @classmethod
    def all_trees(cls, k: int) -> Iterator["BindingTree"]:
        """Every labeled spanning tree on k genders (k^(k-2) of them)."""
        from repro.analysis.counting import enumerate_labeled_trees

        for edges in enumerate_labeled_trees(k):
            yield cls(k, edges)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def max_degree(self) -> int:
        """Δ(T): the parallel bottleneck of Corollary 1."""
        return max(len(nbs) for nbs in self._adj.values())

    def degree(self, gender: int) -> int:
        """Number of bindings gender participates in."""
        return len(self._adj[gender])

    def neighbors(self, gender: int) -> tuple[int, ...]:
        """Genders directly bound to ``gender``."""
        return self._adj[gender]

    def undirected_edges(self) -> frozenset[frozenset[int]]:
        """The edge set ignoring orientation and order."""
        return frozenset(frozenset(e) for e in self.edges)

    def path_between(self, a: int, b: int) -> list[int]:
        """The unique tree path from gender ``a`` to gender ``b``."""
        if not (0 <= a < self.k and 0 <= b < self.k):
            raise InvalidBindingTreeError(f"genders ({a}, {b}) out of range")
        parent: dict[int, int] = {a: a}
        stack = [a]
        while stack:
            g = stack.pop()
            if g == b:
                break
            for nb in self._adj[g]:
                if nb not in parent:
                    parent[nb] = g
                    stack.append(nb)
        path = [b]
        while path[-1] != a:
            path.append(parent[path[-1]])
        return path[::-1]

    def is_bitonic(self, priorities: Sequence[int] | None = None) -> bool:
        """Theorem 5's condition: every node-to-node path is a bitonic
        priority sequence.

        ``priorities[g]`` scores gender g (strict; defaults to the
        gender index itself, matching the paper's numbering where
        higher number = higher priority).
        """
        if priorities is None:
            priorities = list(range(self.k))
        if len(priorities) != self.k or len(set(priorities)) != self.k:
            raise InvalidBindingTreeError(
                f"priorities must be {self.k} distinct values, got {priorities}"
            )
        for a in range(self.k):
            for b in range(a + 1, self.k):
                seq = [priorities[g] for g in self.path_between(a, b)]
                if not is_bitonic(seq):
                    return False
        return True

    def reordered_for_binding(self) -> "BindingTree":
        """Same tree, edges reordered so each binds into the connected
        component grown so far (the incremental order Algorithm 1's
        'does not cause a cycle in T' loop would discover)."""
        remaining = list(self.edges)
        ordered: list[tuple[int, int]] = []
        reached = {self.edges[0][0]}
        while remaining:
            for idx, (a, b) in enumerate(remaining):
                if a in reached or b in reached:
                    reached.update((a, b))
                    ordered.append(remaining.pop(idx))
                    break
            else:  # pragma: no cover - unreachable for a valid tree
                raise InvalidBindingTreeError("edge set is disconnected")
        return BindingTree(self.k, ordered)

    def to_prufer(self) -> list[int]:
        """Prüfer encoding of the undirected tree."""
        from repro.analysis.counting import tree_to_prufer

        und = sorted(tuple(sorted(e)) for e in self.edges)
        return tree_to_prufer(und, self.k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BindingTree(k={self.k}, edges={list(self.edges)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BindingTree):
            return NotImplemented
        return self.k == other.k and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((self.k, self.edges))
