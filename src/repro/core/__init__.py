"""Core contribution: stable k-ary matching via iterative binding.

This package implements Section IV of the paper:

* :class:`BindingTree` — spanning trees on the gender set, with Prüfer
  enumeration (Cayley's k^(k-2)), chains, stars, and bitonicity tests;
* :func:`iterative_binding` — Algorithm 1: k-1 pairwise Gale-Shapley
  bindings along a tree, merged into k-tuples by the equivalence
  relation "in the same matching tuple" (Theorem 2: always stable);
* :func:`priority_binding` — Algorithm 2: the priority-aware variant
  that grows a *bitonic* tree, guaranteeing stability even under the
  weakened (lead-member) blocking condition (Theorem 5);
* :mod:`repro.core.stability` — exhaustive/pruned searches for strong
  and weakened blocking families, plus the fast per-edge certificates
  used in Theorem 2's proof.
"""

from repro.core.binding_tree import BindingTree
from repro.core.kary_matching import KAryMatching
from repro.core.iterative_binding import BindingResult, iterative_binding
from repro.core.priority_binding import (
    priority_binding,
    build_priority_tree,
    enumerate_priority_trees,
)
from repro.core.dynamic import DynamicBindingSession
from repro.core.forest_binding import (
    BindingForest,
    PartialFamilies,
    forest_binding,
    complete_matching,
)
from repro.core.tree_search import TreeSearchResult, best_binding_tree, OBJECTIVES
from repro.core.stability import (
    BlockingFamily,
    find_blocking_family,
    find_weakened_blocking_family,
    find_quorum_blocking_family,
    is_stable_kary,
    is_weakened_stable_kary,
    blocking_pairs_between,
    certify_tree_stability,
)

__all__ = [
    "BindingTree",
    "DynamicBindingSession",
    "BindingForest",
    "PartialFamilies",
    "forest_binding",
    "complete_matching",
    "TreeSearchResult",
    "best_binding_tree",
    "OBJECTIVES",
    "KAryMatching",
    "BindingResult",
    "iterative_binding",
    "priority_binding",
    "build_priority_tree",
    "enumerate_priority_trees",
    "BlockingFamily",
    "find_blocking_family",
    "find_weakened_blocking_family",
    "find_quorum_blocking_family",
    "is_stable_kary",
    "is_weakened_stable_kary",
    "blocking_pairs_between",
    "certify_tree_stability",
]
