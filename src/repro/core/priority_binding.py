"""Algorithm 2: priority-based iterative binding (Section IV.D).

With a strict priority order on genders, the *weakened* blocking family
only consults each same-family group's **lead member** (its highest-
priority gender).  Weakened blocking families are easier to form, so
plain Algorithm 1 on an arbitrary tree can fail (Figure 5a); the fix is
to grow the binding tree by decreasing priority — start at the highest-
priority gender, repeatedly attach the highest-priority remaining gender
to *any* node already in the tree.  Trees built this way are exactly the
**bitonic** trees (every path's priority sequence rises then falls),
there are T(k) = (k-1)! of them, and Theorem 5 shows they prevent every
weakened blocking family.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

import numpy as np

from repro.core.binding_tree import BindingTree
from repro.core.iterative_binding import BindingResult, iterative_binding
from repro.exceptions import InvalidBindingTreeError
from repro.model.instance import KPartiteInstance
from repro.obs.sink import ObsSink
from repro.utils.rng import as_rng

__all__ = [
    "build_priority_tree",
    "enumerate_priority_trees",
    "priority_binding",
    "ATTACH_POLICIES",
]

AttachPolicy = Callable[[Sequence[int], int], int]
"""Given the genders already in the tree and the gender being attached,
return the existing gender to bind it to."""


def _attach_chain(in_tree: Sequence[int], joining: int) -> int:
    """Attach to the most recently added gender: yields the decreasing-
    priority *chain*, the minimum-Δ bitonic tree."""
    return in_tree[-1]


def _attach_star(in_tree: Sequence[int], joining: int) -> int:
    """Attach everything to the root: yields the *star* at the highest-
    priority gender (maximum Δ, minimum depth)."""
    return in_tree[0]


ATTACH_POLICIES: dict[str, AttachPolicy] = {
    "chain": _attach_chain,
    "star": _attach_star,
}


def build_priority_tree(
    k: int,
    priorities: Sequence[int] | None = None,
    *,
    attach: str | AttachPolicy = "chain",
    seed: int | None | np.random.Generator = None,
) -> BindingTree:
    """Algorithm 2's tree construction.

    Nodes join in decreasing priority; each joins as a neighbor of an
    existing node chosen by ``attach`` (``"chain"``, ``"star"``,
    ``"random"``, or a callable).  Edge orientation: the existing
    (higher-priority side) gender proposes.

    The result is always bitonic (each node's parent has higher
    priority, so any path rises to the common ancestor then falls).

    >>> build_priority_tree(4).edges   # priorities = gender index
    ((3, 2), (2, 1), (1, 0))
    """
    if priorities is None:
        priorities = list(range(k))
    if len(priorities) != k or len(set(priorities)) != k:
        raise InvalidBindingTreeError(
            f"priorities must be {k} distinct values, got {list(priorities)}"
        )
    if callable(attach):
        attach_fn = attach
    elif attach == "random":
        rng = as_rng(seed)

        def attach_fn(in_tree: Sequence[int], joining: int) -> int:
            return in_tree[int(rng.integers(len(in_tree)))]

    else:
        try:
            attach_fn = ATTACH_POLICIES[attach]
        except KeyError:
            raise InvalidBindingTreeError(
                f"unknown attach policy {attach!r}; choose from "
                f"{sorted(ATTACH_POLICIES) + ['random']} or pass a callable"
            ) from None
    by_priority = sorted(range(k), key=lambda g: -priorities[g])
    in_tree = [by_priority[0]]
    edges: list[tuple[int, int]] = []
    for j in by_priority[1:]:
        host = attach_fn(tuple(in_tree), j)
        if host not in in_tree:
            raise InvalidBindingTreeError(
                f"attach policy returned {host}, which is not in the tree yet"
            )
        edges.append((host, j))
        in_tree.append(j)
    return BindingTree(k, edges)


def enumerate_priority_trees(
    k: int, priorities: Sequence[int] | None = None
) -> Iterator[BindingTree]:
    """All (k-1)! priority-based binding trees (Figure 6's T(k)).

    Each tree arises from one sequence of attachment choices: the t-th
    joining node picks any of the t nodes already present.
    """
    if priorities is None:
        priorities = list(range(k))
    if len(priorities) != k or len(set(priorities)) != k:
        raise InvalidBindingTreeError(
            f"priorities must be {k} distinct values, got {list(priorities)}"
        )
    by_priority = sorted(range(k), key=lambda g: -priorities[g])

    def rec(
        idx: int, in_tree: list[int], edges: list[tuple[int, int]]
    ) -> Iterator[BindingTree]:
        if idx == k:
            yield BindingTree(k, list(edges))
            return
        j = by_priority[idx]
        for host in list(in_tree):
            edges.append((host, j))
            in_tree.append(j)
            yield from rec(idx + 1, in_tree, edges)
            in_tree.pop()
            edges.pop()

    yield from rec(1, [by_priority[0]], [])


def priority_binding(
    instance: KPartiteInstance,
    priorities: Sequence[int] | None = None,
    *,
    attach: str | AttachPolicy = "chain",
    engine: str = "textbook",
    seed: int | None | np.random.Generator = None,
    sink: "ObsSink | None" = None,
) -> BindingResult:
    """Algorithm 2 end to end: build the bitonic tree, then bind.

    The returned matching is stable under the **weakened** blocking
    condition for the given priorities (Theorem 5) — and a fortiori
    under the strong one (Theorem 2).  ``sink`` is forwarded to
    :func:`~repro.core.iterative_binding.iterative_binding`, whose
    ``binding.*`` spans and counters cover the Algorithm 2 run too.
    """
    if priorities is None:
        priorities = list(range(instance.k))
    tree = build_priority_tree(instance.k, priorities, attach=attach, seed=seed)
    assert tree.is_bitonic(priorities), "Algorithm 2 must construct a bitonic tree"
    return iterative_binding(instance, tree, engine=engine, sink=sink)
