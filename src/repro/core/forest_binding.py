"""Binding *forests*: what happens with fewer than k-1 bindings.

Theorem 4's lower direction studies Algorithm 1 run with only k-2 (or
fewer) bindings: the gender set splits into components, and completing
the partial families into k-tuples requires attaching components
**without any binding** — i.e. obliviously with respect to
cross-component preferences.  This module makes that regime a
first-class object instead of experiment-local code:

* :class:`BindingForest` — any cycle-free edge set on the genders
  (a spanning tree is the k-1-edge special case);
* :func:`forest_binding` — run GS on every edge and return the
  *partial* families (one per component, sized by component);
* :func:`complete_matching` — attach components into full k-tuples by
  an oblivious policy (``"by_index"`` or seeded ``"random"``), exactly
  the completions the Theorem 4 experiment destabilizes.

The stability caveat is the whole point: completions are **not**
guaranteed stable (that is Theorem 4); callers should verify with
:func:`repro.core.stability.find_blocking_family`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.bipartite.gale_shapley import GSResult
from repro.core.iterative_binding import binding_pairs_for_edge
from repro.core.kary_matching import KAryMatching
from repro.exceptions import InvalidBindingTreeError, InvalidMatchingError
from repro.model.instance import KPartiteInstance
from repro.model.members import Member
from repro.utils.rng import as_rng
from repro.utils.unionfind import UnionFind

__all__ = ["BindingForest", "PartialFamilies", "forest_binding", "complete_matching"]


class BindingForest:
    """A cycle-free set of oriented binding edges on genders 0..k-1.

    Unlike :class:`~repro.core.binding_tree.BindingTree`, the edge set
    may be empty or leave genders disconnected — that is the regime
    under study.
    """

    __slots__ = ("k", "edges", "_components")

    def __init__(self, k: int, edges: Sequence[tuple[int, int]]) -> None:
        if k < 2:
            raise InvalidBindingTreeError(f"need k >= 2 genders, got {k}")
        edges = tuple((int(a), int(b)) for a, b in edges)
        uf = UnionFind(range(k))
        seen: set[frozenset[int]] = set()
        for a, b in edges:
            if not (0 <= a < k and 0 <= b < k):
                raise InvalidBindingTreeError(f"edge ({a}, {b}) references unknown gender")
            if a == b:
                raise InvalidBindingTreeError(f"self-loop on gender {a}")
            key = frozenset((a, b))
            if key in seen:
                raise InvalidBindingTreeError(f"duplicate edge between {a} and {b}")
            seen.add(key)
            if not uf.union(a, b):
                raise InvalidBindingTreeError(
                    f"edge ({a}, {b}) closes a cycle; forests must be acyclic"
                )
        self.k = k
        self.edges = edges
        self._components = tuple(tuple(sorted(g)) for g in uf.groups())

    @property
    def components(self) -> tuple[tuple[int, ...], ...]:
        """Gender components, each sorted, in first-seen order."""
        return self._components

    @property
    def is_spanning(self) -> bool:
        """True iff the forest is a spanning tree (one component)."""
        return len(self._components) == 1


@dataclass(frozen=True)
class PartialFamilies:
    """Output of binding along a forest: families per gender component.

    Attributes
    ----------
    forest:
        The binding forest used.
    groups:
        ``groups[c]`` — the n partial families of component c, each a
        tuple of members covering exactly the component's genders.
    edge_results:
        Per-edge GS statistics, in forest edge order.
    """

    forest: BindingForest
    groups: tuple[tuple[tuple[Member, ...], ...], ...]
    edge_results: tuple[GSResult, ...]


def forest_binding(
    instance: KPartiteInstance,
    forest: BindingForest,
    *,
    engine: str = "textbook",
) -> PartialFamilies:
    """Run GS on every forest edge; return per-component partial families."""
    if forest.k != instance.k:
        raise InvalidBindingTreeError(
            f"forest has k={forest.k}, instance has k={instance.k}"
        )
    uf = UnionFind(instance.members())
    results = []
    for proposer, responder in forest.edges:
        pairs, res = binding_pairs_for_edge(instance, proposer, responder, engine=engine)
        results.append(res)
        for a, b in pairs:
            uf.union(a, b)
    by_component: dict[tuple[int, ...], list[tuple[Member, ...]]] = {
        comp: [] for comp in forest.components
    }
    comp_of_gender = {
        g: comp for comp in forest.components for g in comp
    }
    for group in uf.groups():
        members = tuple(sorted(group))
        comp = comp_of_gender[members[0].gender]
        if tuple(sorted(m.gender for m in members)) != comp:
            raise InvalidMatchingError(
                f"partial family {members} does not cover component {comp}"
            )
        by_component[comp].append(members)
    return PartialFamilies(
        forest=forest,
        groups=tuple(tuple(by_component[comp]) for comp in forest.components),
        edge_results=tuple(results),
    )


def complete_matching(
    instance: KPartiteInstance,
    partial: PartialFamilies,
    *,
    policy: str = "by_index",
    seed: int | None | np.random.Generator = None,
) -> KAryMatching:
    """Obliviously glue components into full k-tuples.

    ``policy``:

    * ``"by_index"`` — the t-th partial family of every component joins
      tuple t (ordered by each component's lowest-gender member index);
    * ``"random"`` — a seeded uniform permutation per component.

    The attachment never consults cross-component preferences — by
    construction there is no binding to consult — which is precisely
    why Theorem 4 says the result can always be destabilized.
    """
    n = instance.n
    rng = as_rng(seed)
    aligned: list[list[tuple[Member, ...]]] = []
    for comp_groups in partial.groups:
        ordered = sorted(comp_groups, key=lambda fam: fam[0].index)
        if policy == "by_index":
            aligned.append(list(ordered))
        elif policy == "random":
            perm = rng.permutation(n)
            aligned.append([ordered[int(p)] for p in perm])
        else:
            raise InvalidMatchingError(
                f"unknown completion policy {policy!r}; use 'by_index' or 'random'"
            )
    tuples = []
    for t in range(n):
        members: list[Member] = []
        for comp_groups in aligned:
            members.extend(comp_groups[t])
        tuples.append(tuple(members))
    return KAryMatching.from_tuples(instance, tuples)
