"""Incremental re-binding under preference churn.

The paper's sociology framing assumes an "ideal environment": a static
population whose preferences never change.  This module relaxes that
for the k-ary matching side: a :class:`DynamicBindingSession` holds a
mutable instance and keeps the Algorithm-1 matching **incrementally**
up to date as preferences change.

The key structural fact making this cheap: a binding GS(i, j) reads
only the i-over-j and j-over-i preference blocks.  A preference update
by a member of gender g over gender h therefore invalidates *at most
one* tree edge — the (g, h) edge if it is in the binding tree — and
leaves every other edge's matched pairs valid.  Re-deriving the
equivalence classes after re-running the dirty edges reuses the
remaining k-2 bindings verbatim, so a single-list update costs one
GS run (O(n²)) instead of k-1 of them.

Arrivals/departures change n and are inherently global: the session
exposes :meth:`rebuild` for those, keeping the bookkeeping honest
rather than pretending they are incremental.
"""

from __future__ import annotations

from collections.abc import Sequence


from repro.bipartite.gale_shapley import GSResult, gale_shapley
from repro.core.binding_tree import BindingTree
from repro.core.kary_matching import KAryMatching
from repro.exceptions import InvalidInstanceError
from repro.model.instance import KPartiteInstance
from repro.model.members import Member

__all__ = ["DynamicBindingSession"]


class DynamicBindingSession:
    """Maintain an Algorithm-1 matching under preference updates.

    Parameters
    ----------
    instance:
        The starting instance (copied — the session owns its state).
    tree:
        Binding tree; defaults to the chain.
    engine:
        Gale-Shapley engine used for (re-)binding.

    Examples
    --------
    >>> from repro.model.generators import random_instance
    >>> session = DynamicBindingSession(random_instance(3, 4, seed=0))
    >>> m0 = session.matching()                   # binds both chain edges
    >>> session.update_preferences(Member(0, 1), 1, [3, 2, 1, 0])
    (0, 1)
    >>> m1 = session.matching()                   # re-runs only edge (0, 1)
    >>> session.stats["bindings_reused"]
    1
    """

    def __init__(
        self,
        instance: KPartiteInstance,
        tree: BindingTree | None = None,
        *,
        engine: str = "textbook",
    ) -> None:
        self._pref = instance.pref_array().copy()
        self.k = instance.k
        self.n = instance.n
        self.gender_names = instance.gender_names
        self.tree = tree if tree is not None else BindingTree.chain(self.k)
        if self.tree.k != self.k:
            raise InvalidInstanceError(
                f"tree has k={self.tree.k}, instance has k={self.k}"
            )
        self.engine = engine
        self._edge_results: dict[tuple[int, int], GSResult] = {}
        self._dirty: set[tuple[int, int]] = set(self.tree.edges)
        self._matching: KAryMatching | None = None
        self._version = 0
        self._matching_version = -1
        #: Counters: bindings_run / bindings_reused across all refreshes,
        #: plus updates applied.
        self.stats = {"bindings_run": 0, "bindings_reused": 0, "updates": 0}

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------

    def instance(self) -> KPartiteInstance:
        """A fresh immutable snapshot of the current preferences."""
        return KPartiteInstance.from_arrays(
            self._pref.copy(), validate=False, gender_names=self.gender_names
        )

    def edge_for(self, g: int, h: int) -> tuple[int, int] | None:
        """The tree edge binding genders g and h, if any (orientation as
        stored in the tree)."""
        for edge in self.tree.edges:
            if set(edge) == {g, h}:
                return edge
        return None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def update_preferences(
        self, member: Member, over_gender: int, new_list: Sequence[int]
    ) -> tuple[int, int] | None:
        """Replace ``member``'s list over ``over_gender``.

        Returns the tree edge invalidated by the update (or ``None`` if
        the two genders are not directly bound — the matching is then
        unaffected, which the tests verify against a full recompute).
        """
        g, i = member
        h = int(over_gender)
        if not (0 <= g < self.k and 0 <= i < self.n):
            raise InvalidInstanceError(f"unknown member {member!r}")
        if h == g or not 0 <= h < self.k:
            raise InvalidInstanceError(f"invalid target gender {h} for gender {g}")
        new_list = [int(x) for x in new_list]
        if sorted(new_list) != list(range(self.n)):
            raise InvalidInstanceError(
                f"new list must be a permutation of range({self.n}), got {new_list}"
            )
        self._pref[g, i, h] = new_list
        self.stats["updates"] += 1
        self._version += 1
        edge = self.edge_for(g, h)
        if edge is not None:
            self._dirty.add(edge)
            self._matching = None
        return edge

    def swap_top_choices(self, member: Member, over_gender: int) -> tuple[int, int] | None:
        """Convenience churn: swap the member's two favourite entries."""
        g, i = member
        row = self._pref[g, i, over_gender].tolist()
        row[0], row[1] = row[1], row[0]
        return self.update_preferences(member, over_gender, row)

    def rebuild(self) -> None:
        """Mark every edge dirty (used after global changes)."""
        self._dirty = set(self.tree.edges)
        self._matching = None

    # ------------------------------------------------------------------
    # refresh
    # ------------------------------------------------------------------

    def matching(self) -> KAryMatching:
        """The current stable k-ary matching, re-binding only dirty edges.

        The returned object always wraps a snapshot of the *current*
        preferences: updates that touch no bound edge leave the matched
        tuples untouched but still refresh the wrapper (cheaply, without
        re-running any binding).
        """
        if (
            self._matching is not None
            and not self._dirty
            and self._matching_version == self._version
        ):
            return self._matching
        for edge in self.tree.edges:
            if edge in self._dirty or edge not in self._edge_results:
                pg, rg = edge
                res = gale_shapley(
                    self._pref[pg, :, rg, :],
                    self._pref[rg, :, pg, :],
                    engine=self.engine,
                )
                self._edge_results[edge] = res
                self.stats["bindings_run"] += 1
            else:
                self.stats["bindings_reused"] += 1
        self._dirty.clear()
        pairs = []
        for (pg, rg), res in self._edge_results.items():
            pairs.extend(
                (Member(pg, i), Member(rg, j)) for i, j in enumerate(res.matching)
            )
        self._matching = KAryMatching.from_pairs(self.instance(), pairs)
        self._matching_version = self._version
        return self._matching
