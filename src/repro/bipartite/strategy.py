"""Strategic behaviour under Gale-Shapley: who can lie profitably?

Classic mechanism-design companions to the paper's fairness discussion
(man-proposing GS "favors men over women"):

* **proposers cannot gain by misreporting** (Dubins & Freedman; Roth) —
  truth-telling is a dominant strategy for the proposing side;
* **responders can**: a responder may truncate/permute its list so the
  proposer-optimal outcome improves for it — the flip side of receiving
  the pessimal stable partner.

Both facts become *executable* here: :func:`best_misreport` brute-forces
every alternative list for one participant (factorial — keep n small)
and reports the best achievable partner under truthful behaviour of
everyone else, measured against the participant's **true** preferences.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.bipartite.gale_shapley import gale_shapley
from repro.exceptions import InvalidInstanceError

__all__ = ["MisreportResult", "best_misreport", "proposer_truthfulness_holds"]


@dataclass(frozen=True)
class MisreportResult:
    """Outcome of the exhaustive misreport search for one participant.

    Attributes
    ----------
    side:
        ``"proposer"`` or ``"responder"``.
    agent:
        The participant whose reports were varied.
    truthful_rank:
        Rank (by the agent's true list, 0 best) of its partner when
        everyone reports truthfully.
    best_rank:
        Best partner rank achievable by any unilateral misreport.
    best_report:
        A report achieving ``best_rank`` (the truthful list if no lie
        helps).
    gain:
        ``truthful_rank - best_rank`` (> 0 iff lying pays).
    """

    side: str
    agent: int
    truthful_rank: int
    best_rank: int
    best_report: tuple[int, ...]
    gain: int


def _partner_rank_true(
    true_list: np.ndarray, partner: int
) -> int:
    return int(np.where(true_list == partner)[0][0])


def best_misreport(
    proposer_prefs: np.ndarray,
    responder_prefs: np.ndarray,
    *,
    side: str,
    agent: int,
) -> MisreportResult:
    """Exhaustively search ``agent``'s possible preference reports.

    Everyone else reports truthfully; the mechanism is man-proposing
    (proposer-optimal) GS.  Complexity n! per call — intended for the
    n ≤ 6 experiment sizes.

    >>> # a responder in Example 1 (variant b) gains nothing at n=2 ...
    >>> best_misreport([[0, 1], [1, 0]], [[1, 0], [0, 1]],
    ...                side="responder", agent=0).gain
    0
    """
    p = np.asarray(proposer_prefs, dtype=np.int64)
    r = np.asarray(responder_prefs, dtype=np.int64)
    n = p.shape[0]
    if side not in ("proposer", "responder"):
        raise InvalidInstanceError(f"side must be proposer/responder, got {side!r}")
    if not 0 <= agent < n:
        raise InvalidInstanceError(f"agent {agent} out of range for n={n}")

    def outcome_rank(p_mat: np.ndarray, r_mat: np.ndarray) -> int:
        res = gale_shapley(p_mat, r_mat)
        if side == "proposer":
            return _partner_rank_true(p[agent], res.matching[agent])
        partner = res.inverse()[agent]
        return _partner_rank_true(r[agent], partner)

    truthful = outcome_rank(p, r)
    best_rank = truthful
    best_report = tuple(
        (p if side == "proposer" else r)[agent].tolist()
    )
    for report in itertools.permutations(range(n)):
        if side == "proposer":
            trial_p = p.copy()
            trial_p[agent] = report
            rank = outcome_rank(trial_p, r)
        else:
            trial_r = r.copy()
            trial_r[agent] = report
            rank = outcome_rank(p, trial_r)
        if rank < best_rank:
            best_rank = rank
            best_report = tuple(report)
    return MisreportResult(
        side=side,
        agent=agent,
        truthful_rank=truthful,
        best_rank=best_rank,
        best_report=best_report,
        gain=truthful - best_rank,
    )


def proposer_truthfulness_holds(
    proposer_prefs: np.ndarray, responder_prefs: np.ndarray
) -> bool:
    """Check Dubins-Freedman on one instance: no proposer gains by any
    unilateral misreport (exhaustive; n! per proposer)."""
    n = np.asarray(proposer_prefs).shape[0]
    return all(
        best_misreport(proposer_prefs, responder_prefs, side="proposer", agent=i).gain
        == 0
        for i in range(n)
    )
