"""Stability verification for bipartite matchings.

The definition being checked is the paper's (Section I): matching M is
unstable iff there exist two matched pairs (m, w), (m', w') such that m
prefers w' to w **and** w' prefers m to m'.  :func:`blocking_pairs`
returns every such (m, w') witness; :func:`is_stable` is the boolean.

A vectorized O(n²) check is used: build the rank matrices once, then a
single boolean outer comparison finds all blocking pairs at once.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidMatchingError
from repro.utils.ordering import rank_array

__all__ = ["blocking_pairs", "is_stable", "assert_perfect", "as_matching_array"]


def as_matching_array(matching: Sequence[int] | Mapping[int, int], n: int) -> np.ndarray:
    """Normalize a matching (sequence or dict proposer->responder) to an array.

    Validates that it is a perfect matching: a bijection from proposers
    to responders.
    """
    if isinstance(matching, Mapping):
        arr = np.full(n, -1, dtype=np.int64)
        for i, j in matching.items():
            if not 0 <= int(i) < n:
                raise InvalidMatchingError(f"proposer index {i} out of range")
            arr[int(i)] = int(j)
    else:
        arr = np.asarray(list(matching), dtype=np.int64)
    if arr.shape != (n,):
        raise InvalidMatchingError(f"matching must cover all {n} proposers, got {arr.shape}")
    if sorted(arr.tolist()) != list(range(n)):
        raise InvalidMatchingError(
            f"matching is not a bijection onto responders: {arr.tolist()}"
        )
    return arr


def assert_perfect(matching: Sequence[int] | Mapping[int, int], n: int) -> None:
    """Raise :class:`InvalidMatchingError` unless ``matching`` is perfect."""
    as_matching_array(matching, n)


def blocking_pairs(
    proposer_prefs: np.ndarray,
    responder_prefs: np.ndarray,
    matching: Sequence[int] | Mapping[int, int],
) -> list[tuple[int, int]]:
    """All blocking pairs ``(proposer i, responder j)`` of ``matching``.

    A pair blocks iff i prefers j to its current partner and j prefers i
    to its current partner.  Complexity O(n²) time and space.

    >>> blocking_pairs([[0, 1], [0, 1]], [[1, 0], [1, 0]], [0, 1])
    [(1, 0)]
    """
    p = np.asarray(proposer_prefs, dtype=np.int64)
    r = np.asarray(responder_prefs, dtype=np.int64)
    n = p.shape[0]
    match = as_matching_array(matching, n)
    p_rank = np.array([rank_array(row.tolist()) for row in p])
    r_rank = np.array([rank_array(row.tolist()) for row in r])
    inv = np.empty(n, dtype=np.int64)
    inv[match] = np.arange(n)
    # proposer i's rank of its partner, broadcast against all responders
    own_p = p_rank[np.arange(n), match][:, None]  # (n, 1)
    own_r = r_rank[np.arange(n), inv][None, :]  # (1, n) indexed by responder
    better_for_p = p_rank < own_p  # i strictly prefers j to partner
    better_for_r = r_rank.T < own_r  # j strictly prefers i to partner (transposed to (i, j))
    block = better_for_p & better_for_r
    return [(int(i), int(j)) for i, j in zip(*np.nonzero(block))]


def is_stable(
    proposer_prefs: np.ndarray,
    responder_prefs: np.ndarray,
    matching: Sequence[int] | Mapping[int, int],
) -> bool:
    """True iff ``matching`` has no blocking pair."""
    return not blocking_pairs(proposer_prefs, responder_prefs, matching)
