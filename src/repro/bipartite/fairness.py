"""Fairness and happiness metrics for bipartite matchings.

The paper motivates the roommates-based SMP solver of Section III.B
with the observation that man-proposing GS "favors men over women in
terms of preferential happiness".  These metrics quantify that:

* :func:`proposer_cost` / :func:`responder_cost` — sum of the ranks each
  side assigns to its partner (0 = everyone got their first choice);
* :func:`egalitarian_cost` — total of both (lower = happier society);
* :func:`sex_equality_cost` — absolute gap between the sides (lower =
  fairer);
* :func:`regret` — the worst rank anyone suffers.

All ranks are 0-based: a cost of 0 means universal first choices.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.bipartite.verify import as_matching_array
from repro.utils.ordering import rank_array

__all__ = [
    "proposer_cost",
    "responder_cost",
    "egalitarian_cost",
    "sex_equality_cost",
    "regret",
    "MatchingCosts",
    "matching_costs",
]


def _ranks(prefs: np.ndarray) -> np.ndarray:
    p = np.asarray(prefs, dtype=np.int64)
    return np.array([rank_array(row.tolist()) for row in p])


def proposer_cost(
    proposer_prefs: np.ndarray, matching: Sequence[int] | Mapping[int, int]
) -> int:
    """Sum over proposers of the rank each assigns its partner."""
    p_rank = _ranks(proposer_prefs)
    match = as_matching_array(matching, p_rank.shape[0])
    return int(p_rank[np.arange(len(match)), match].sum())


def responder_cost(
    responder_prefs: np.ndarray, matching: Sequence[int] | Mapping[int, int]
) -> int:
    """Sum over responders of the rank each assigns its partner."""
    r_rank = _ranks(responder_prefs)
    match = as_matching_array(matching, r_rank.shape[0])
    inv = np.empty(len(match), dtype=np.int64)
    inv[match] = np.arange(len(match))
    return int(r_rank[np.arange(len(match)), inv].sum())


def egalitarian_cost(
    proposer_prefs: np.ndarray,
    responder_prefs: np.ndarray,
    matching: Sequence[int] | Mapping[int, int],
) -> int:
    """Total happiness cost of both sides (lower is better)."""
    return proposer_cost(proposer_prefs, matching) + responder_cost(responder_prefs, matching)


def sex_equality_cost(
    proposer_prefs: np.ndarray,
    responder_prefs: np.ndarray,
    matching: Sequence[int] | Mapping[int, int],
) -> int:
    """|proposer_cost - responder_cost|: the paper's gender-unfairness gap."""
    return abs(
        proposer_cost(proposer_prefs, matching) - responder_cost(responder_prefs, matching)
    )


def regret(
    proposer_prefs: np.ndarray,
    responder_prefs: np.ndarray,
    matching: Sequence[int] | Mapping[int, int],
) -> int:
    """The maximum rank any participant (either side) assigns its partner."""
    p_rank = _ranks(proposer_prefs)
    r_rank = _ranks(responder_prefs)
    match = as_matching_array(matching, p_rank.shape[0])
    inv = np.empty(len(match), dtype=np.int64)
    inv[match] = np.arange(len(match))
    worst_p = int(p_rank[np.arange(len(match)), match].max())
    worst_r = int(r_rank[np.arange(len(match)), inv].max())
    return max(worst_p, worst_r)


@dataclass(frozen=True)
class MatchingCosts:
    """Bundle of all fairness metrics for one matching."""

    proposer: int
    responder: int
    egalitarian: int
    sex_equality: int
    regret: int


def matching_costs(
    proposer_prefs: np.ndarray,
    responder_prefs: np.ndarray,
    matching: Sequence[int] | Mapping[int, int],
) -> MatchingCosts:
    """Compute every metric at once (single rank-matrix construction)."""
    p_rank = _ranks(proposer_prefs)
    r_rank = _ranks(responder_prefs)
    match = as_matching_array(matching, p_rank.shape[0])
    inv = np.empty(len(match), dtype=np.int64)
    inv[match] = np.arange(len(match))
    pc = int(p_rank[np.arange(len(match)), match].sum())
    rc = int(r_rank[np.arange(len(match)), inv].sum())
    worst = max(
        int(p_rank[np.arange(len(match)), match].max()),
        int(r_rank[np.arange(len(match)), inv].max()),
    )
    return MatchingCosts(
        proposer=pc,
        responder=rc,
        egalitarian=pc + rc,
        sex_equality=abs(pc - rc),
        regret=worst,
    )
