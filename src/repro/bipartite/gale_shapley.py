"""Gale-Shapley engines with full instrumentation.

All engines return the **proposer-optimal** stable matching (Gale &
Shapley 1962): each proposer gets the best partner it has in *any*
stable matching, each responder the worst.  The paper leans on two
quantitative facts that the instrumentation exposes:

* total proposals ≤ n² (the bound Theorem 3 multiplies by k-1);
* the round-synchronous variant ("each unengaged man first proposes ...
  in each subsequent iteration") converges to the same matching as the
  sequential textbook order — proposal order never changes the outcome.

Engines
-------
``textbook``
    Sequential free-list loop.  One proposal per iteration; ``rounds``
    reported equals the number of proposals.
``rounds``
    Round-synchronous: every currently-free proposer advances one list
    position per round, then responders keep the best suitor seen.
    Matches the paper's description of the distributed algorithm.
``vectorized``
    Same schedule as ``rounds`` but each round is a handful of NumPy
    batch operations — the profile-guided optimization the HPC guides
    prescribe (the hot loop is rank comparison; we lift it to arrays).
``auto``
    Route by the measured textbook/vectorized crossover: the tight list
    loop wins below :data:`AUTO_CROSSOVER_N`, the NumPy rounds win at
    and above it (see docs/PERFORMANCE.md for the measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, InvalidInstanceError
from repro.obs.sink import ObsSink
from repro.utils.ordering import NotAPermutationError, rank_matrix

__all__ = [
    "GSResult",
    "gale_shapley",
    "resolve_auto_engine",
    "AUTO_CROSSOVER_N",
    "BATCH_CROSSOVER_WORK",
    "ENGINES",
]


@dataclass(frozen=True)
class GSResult:
    """Outcome of one Gale-Shapley run.

    Attributes
    ----------
    matching:
        ``matching[i]`` is the responder index matched to proposer ``i``.
    proposals:
        Total number of proposals issued (the paper's "iterations of the
        matching process"; ≤ n²).
    rounds:
        Number of synchronous rounds (for the ``textbook`` engine this
        equals ``proposals`` since one proposal is made per step).
    engine:
        Which engine produced the result.
    trace:
        Optional list of ``(round, proposer, responder, accepted)``
        events, recorded when ``trace=True``.
    """

    matching: tuple[int, ...]
    proposals: int
    rounds: int
    engine: str
    trace: tuple[tuple[int, int, int, bool], ...] = field(default=())

    @property
    def n(self) -> int:
        """Number of proposers (= responders) in the instance."""
        return len(self.matching)

    def as_dict(self) -> dict[int, int]:
        """Matching as a proposer -> responder dict."""
        return dict(enumerate(self.matching))

    def inverse(self) -> tuple[int, ...]:
        """``inverse()[j]`` is the proposer matched to responder ``j``."""
        inv = [-1] * len(self.matching)
        for i, j in enumerate(self.matching):
            inv[j] = i
        return tuple(inv)


def _validate_prefs(proposer_prefs: np.ndarray, responder_prefs: np.ndarray) -> tuple[
    np.ndarray, np.ndarray
]:
    p = np.asarray(proposer_prefs, dtype=np.int64)
    r = np.asarray(responder_prefs, dtype=np.int64)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        raise InvalidInstanceError(f"proposer_prefs must be square, got shape {p.shape}")
    if r.shape != p.shape:
        raise InvalidInstanceError(
            f"responder_prefs shape {r.shape} must match proposer_prefs {p.shape}"
        )
    return p, r


def _proposer_check(proposer_prefs: np.ndarray) -> None:
    """Validate that every proposer row is a permutation.

    Mirrors :func:`_responder_ranks`' exception discipline: the raw
    ``ValueError`` from the permutation check is wrapped in
    :class:`InvalidInstanceError` naming the offending proposer.
    """
    try:
        rank_matrix(proposer_prefs)
    except NotAPermutationError as exc:
        raise InvalidInstanceError(f"proposer {exc.row}: {exc}") from exc


def _responder_ranks(responder_prefs: np.ndarray) -> np.ndarray:
    try:
        return rank_matrix(responder_prefs)
    except NotAPermutationError as exc:
        raise InvalidInstanceError(f"responder {exc.row}: {exc}") from exc


def _gs_textbook(
    p: np.ndarray, r_rank: np.ndarray, trace: bool
) -> tuple[list[int], int, int, list]:
    n = p.shape[0]
    # The inner loop runs once per proposal (up to n²); indexing NumPy
    # arrays there boxes a fresh scalar object per access.  Extract the
    # tables to plain nested lists once so every hot-loop operation is a
    # native list index on ints.
    p_rows: list[list[int]] = p.tolist()
    r_rows: list[list[int]] = r_rank.tolist()
    next_choice = [0] * n  # next list position each proposer will try
    engaged_to = [-1] * n  # proposer -> responder
    holds = [-1] * n  # responder -> proposer currently held
    free = list(range(n - 1, -1, -1))  # stack; order irrelevant to outcome
    proposals = 0
    events: list = []
    while free:
        i = free.pop()
        if next_choice[i] >= n:
            raise InvalidInstanceError(
                f"proposer {i} exhausted its list; preference lists are "
                "not permutations of a complete balanced instance"
            )
        j = p_rows[i][next_choice[i]]
        next_choice[i] += 1
        proposals += 1
        cur = holds[j]
        row = r_rows[j]
        accept = cur == -1 or row[i] < row[cur]
        if trace:
            events.append((proposals, i, j, accept))
        if accept:
            holds[j] = i
            engaged_to[i] = j
            if cur != -1:
                engaged_to[cur] = -1
                free.append(cur)
        else:
            free.append(i)
    return engaged_to, proposals, proposals, events


def _gs_rounds(
    p: np.ndarray, r_rank: np.ndarray, trace: bool
) -> tuple[list[int], int, int, list]:
    n = p.shape[0]
    next_choice = [0] * n
    engaged_to = [-1] * n
    holds = [-1] * n
    proposals = 0
    rounds = 0
    events: list = []
    while True:
        free = [i for i in range(n) if engaged_to[i] == -1]
        if not free:
            break
        rounds += 1
        # Every free proposer proposes simultaneously; responders then
        # keep the best suitor among {current hold} ∪ {this round's batch}.
        offers: dict[int, list[int]] = {}
        for i in free:
            if next_choice[i] >= n:
                raise InvalidInstanceError(f"proposer {i} exhausted its list")
            j = int(p[i, next_choice[i]])
            next_choice[i] += 1
            proposals += 1
            offers.setdefault(j, []).append(i)
        for j, suitors in offers.items():
            best = min(suitors, key=lambda i: r_rank[j, i])
            cur = holds[j]
            accept = cur == -1 or r_rank[j, best] < r_rank[j, cur]
            if trace:
                for i in suitors:
                    events.append((rounds, i, j, accept and i == best))
            if accept:
                if cur != -1:
                    engaged_to[cur] = -1
                holds[j] = best
                engaged_to[best] = j
    return engaged_to, proposals, rounds, events


def _gs_vectorized(
    p: np.ndarray, r_rank: np.ndarray, trace: bool
) -> tuple[list[int], int, int, list]:
    n = p.shape[0]
    next_choice = np.zeros(n, dtype=np.int64)
    engaged_to = np.full(n, -1, dtype=np.int64)
    holds = np.full(n, -1, dtype=np.int64)
    # rank a responder assigns to "no suitor at all"
    worst = n
    proposals = 0
    rounds = 0
    events: list = []
    while True:
        free = np.flatnonzero(engaged_to == -1)
        if free.size == 0:
            break
        rounds += 1
        if np.any(next_choice[free] >= n):
            raise InvalidInstanceError("a proposer exhausted its list")
        targets = p[free, next_choice[free]]
        next_choice[free] += 1
        proposals += int(free.size)
        # For each responder, the best-ranked suitor in this round's batch:
        suitor_rank = r_rank[targets, free]
        best_rank = np.full(n, worst, dtype=np.int64)
        np.minimum.at(best_rank, targets, suitor_rank)
        # responder j accepts the batch winner iff it beats the current hold
        hold_rank = np.where(holds >= 0, r_rank[np.arange(n), holds], worst)
        accepting = best_rank < hold_rank
        if accepting.any():
            # recover winner identities in one pass: suitor i won at its
            # target j iff its rank equals best_rank[j] (ranks are a
            # permutation, so the winner is unique) AND j accepts.
            winners = (suitor_rank == best_rank[targets]) & accepting[targets]
            win_props = free[winners]
            win_resps = targets[winners]
            dumped = holds[win_resps]
            engaged_to[dumped[dumped >= 0]] = -1
            holds[win_resps] = win_props
            engaged_to[win_props] = win_resps
        if trace:
            for i, j in zip(free.tolist(), targets.tolist()):
                events.append((rounds, int(i), int(j), bool(engaged_to[i] == j)))
    return engaged_to.tolist(), proposals, rounds, events


ENGINES = {
    "textbook": _gs_textbook,
    "rounds": _gs_rounds,
    "vectorized": _gs_vectorized,
}

#: measured crossover between the textbook list loop and the vectorized
#: rounds engine on random instances (this box, 2026-08): textbook wins
#: by 1.8-2.7x up to n=384; vectorized wins by ~1.2-1.3x from n=512 on.
#: See docs/PERFORMANCE.md ("Engine crossover and auto routing").
AUTO_CROSSOVER_N = 512

#: measured crossover for routing a same-shape *batch* to the stacked
#: arena engine (:func:`repro.bipartite.gale_shapley_batch.gale_shapley_batch`)
#: instead of a per-instance loop: the stack wins once total work
#: ``count * n`` clears this constant — and earlier when per-call
#: dispatch dominates (``count >= 2n``) or the vectorized kernel wins
#: even solo (``n >= AUTO_CROSSOVER_N // 2``).  Measured on this box,
#: 2026-08; see docs/PERFORMANCE.md ("Batched solving") for the grid.
BATCH_CROSSOVER_WORK = 2048


def resolve_auto_engine(n: int) -> str:
    """The engine ``engine="auto"`` routes an ``n``-member instance to.

    ``"textbook"`` below :data:`AUTO_CROSSOVER_N`, ``"vectorized"`` at
    and above it — the measured crossover of the two implementations.
    """
    return "textbook" if n < AUTO_CROSSOVER_N else "vectorized"


def gale_shapley(
    proposer_prefs: np.ndarray,
    responder_prefs: np.ndarray,
    *,
    engine: str = "textbook",
    trace: bool = False,
    sink: "ObsSink | None" = None,
) -> GSResult:
    """Run Gale-Shapley and return the proposer-optimal stable matching.

    Parameters
    ----------
    proposer_prefs:
        ``(n, n)`` array; row i is proposer i's preference list over
        responder indices, best first.
    responder_prefs:
        ``(n, n)`` array; row j is responder j's preference list over
        proposer indices, best first.
    engine:
        One of :data:`ENGINES` (``"textbook"``, ``"rounds"``,
        ``"vectorized"``) or ``"auto"`` (route by the measured size
        crossover; the resolved name is reported in
        :attr:`GSResult.engine`).  All engines return the same matching.
    trace:
        Record individual proposal events (slows large runs).
    sink:
        Optional :class:`~repro.obs.sink.ObsSink`: wraps the run in a
        ``gs.run`` span tagged with the engine, n, proposals, and
        rounds, and feeds the ``gs.*`` counters/histograms.  ``None``
        (the default) skips instrumentation entirely — one pointer
        comparison of overhead.

    Examples
    --------
    Example 1 of the paper (first preference set): both men prefer w,
    who prefers m'; m ends up with w'.

    >>> res = gale_shapley([[0, 1], [0, 1]], [[1, 0], [1, 0]])
    >>> res.matching
    (1, 0)
    """
    p, r = _validate_prefs(proposer_prefs, responder_prefs)
    _proposer_check(p)  # proposer rows must be permutations too
    r_rank = _responder_ranks(r)
    resolved = resolve_auto_engine(p.shape[0]) if engine == "auto" else engine
    try:
        run = ENGINES[resolved]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {sorted(ENGINES) + ['auto']}"
        ) from None
    if sink is None:
        matching, proposals, rounds, events = run(p, r_rank, trace)
    else:
        with sink.span("gs.run", engine=resolved, n=int(p.shape[0])) as sp:
            matching, proposals, rounds, events = run(p, r_rank, trace)
            sp.set(proposals=proposals, rounds=rounds)
        sink.incr("gs.runs")
        sink.incr(f"gs.engine.{resolved}.runs")
        sink.incr("gs.proposals", proposals)
        sink.incr("gs.rounds", rounds)
        sink.observe("gs.proposals_per_run", proposals)
    if -1 in matching:
        raise InvalidInstanceError("engine terminated with an unmatched proposer")
    return GSResult(
        matching=tuple(int(x) for x in matching),
        proposals=proposals,
        rounds=rounds,
        engine=resolved,
        trace=tuple(events),
    )
