"""Hospitals/Residents: many-to-one stable matching.

The paper's related work singles out "the hospitals/residents problem
[12], also known as the college admission problem" as the canonical SMP
extension — indeed Gale & Shapley's original 1962 paper is titled
"College admissions and the stability of marriage".  We implement it as
a first-class substrate:

* each of ``n_residents`` residents ranks (a subset of) hospitals;
* hospital h ranks (a subset of) residents and has capacity ``cap[h]``;
* a matching assigns each resident to at most one hospital, never
  exceeding capacities;
* a (resident r, hospital h) pair **blocks** iff they find each other
  acceptable, r is unmatched or prefers h to its hospital, and h has a
  free slot or prefers r to its worst admitted resident.

:func:`hospitals_residents` is resident-proposing deferred acceptance —
resident-optimal, O(L) over the total list length L — and reduces to
Gale-Shapley exactly when every capacity is 1 (tested).

The paper also notes the NP-complete *couples* extension; we expose a
checker (:func:`couples_violations`) for joint-assignment constraints so
experiments can quantify how often optimal-for-singles solutions break
couples, without claiming a tractable solver exists.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidInstanceError, InvalidMatchingError
from repro.utils.rng import as_rng

__all__ = [
    "HRInstance",
    "HRResult",
    "hospitals_residents",
    "hr_blocking_pairs",
    "is_stable_hr",
    "random_hr_instance",
    "couples_violations",
]


@dataclass(frozen=True)
class HRInstance:
    """A Hospitals/Residents instance.

    Attributes
    ----------
    resident_prefs:
        ``resident_prefs[r]`` — hospitals acceptable to resident r,
        best first (may be incomplete).
    hospital_prefs:
        ``hospital_prefs[h]`` — residents acceptable to hospital h,
        best first (may be incomplete).
    capacities:
        ``capacities[h]`` — number of slots at hospital h (>= 0).

    Acceptability is made mutual at construction: one-sided entries are
    dropped (a hospital cannot admit a resident who never listed it).
    """

    resident_prefs: tuple[tuple[int, ...], ...]
    hospital_prefs: tuple[tuple[int, ...], ...]
    capacities: tuple[int, ...]

    def __init__(
        self,
        resident_prefs: Sequence[Sequence[int]],
        hospital_prefs: Sequence[Sequence[int]],
        capacities: Sequence[int],
    ) -> None:
        n_res = len(resident_prefs)
        n_hosp = len(hospital_prefs)
        if len(capacities) != n_hosp:
            raise InvalidInstanceError(
                f"{len(capacities)} capacities for {n_hosp} hospitals"
            )
        caps = tuple(int(c) for c in capacities)
        if any(c < 0 for c in caps):
            raise InvalidInstanceError("capacities must be non-negative")
        r_clean = []
        for r, row in enumerate(resident_prefs):
            row = [int(h) for h in row]
            if any(not 0 <= h < n_hosp for h in row):
                raise InvalidInstanceError(f"resident {r} lists an unknown hospital")
            if len(set(row)) != len(row):
                raise InvalidInstanceError(f"resident {r} has duplicate entries")
            r_clean.append(row)
        h_clean = []
        for h, row in enumerate(hospital_prefs):
            row = [int(r) for r in row]
            if any(not 0 <= r < n_res for r in row):
                raise InvalidInstanceError(f"hospital {h} lists an unknown resident")
            if len(set(row)) != len(row):
                raise InvalidInstanceError(f"hospital {h} has duplicate entries")
            h_clean.append(row)
        # mutual acceptability
        h_accepts = [set(row) for row in h_clean]
        r_accepts = [set(row) for row in r_clean]
        r_final = tuple(
            tuple(h for h in row if r in h_accepts[h]) for r, row in enumerate(r_clean)
        )
        h_final = tuple(
            tuple(r for r in row if h in r_accepts[r]) for h, row in enumerate(h_clean)
        )
        object.__setattr__(self, "resident_prefs", r_final)
        object.__setattr__(self, "hospital_prefs", h_final)
        object.__setattr__(self, "capacities", caps)

    @property
    def n_residents(self) -> int:
        """Number of residents in the instance."""
        return len(self.resident_prefs)

    @property
    def n_hospitals(self) -> int:
        """Number of hospitals in the instance."""
        return len(self.hospital_prefs)

    def hospital_rank(self, h: int, r: int) -> int:
        """Rank hospital h assigns resident r (0 best); raises if
        unacceptable."""
        try:
            return self.hospital_prefs[h].index(r)
        except ValueError:
            raise InvalidInstanceError(
                f"resident {r} is not acceptable to hospital {h}"
            ) from None

    def resident_rank(self, r: int, h: int) -> int:
        """Rank resident r assigns hospital h (0 best)."""
        try:
            return self.resident_prefs[r].index(h)
        except ValueError:
            raise InvalidInstanceError(
                f"hospital {h} is not acceptable to resident {r}"
            ) from None


@dataclass(frozen=True)
class HRResult:
    """Outcome of resident-proposing deferred acceptance.

    Attributes
    ----------
    assignment:
        ``assignment[r]`` — hospital of resident r, or -1 if unmatched.
    admitted:
        ``admitted[h]`` — tuple of residents at hospital h, in the
        hospital's preference order.
    proposals:
        Total applications made.
    """

    assignment: tuple[int, ...]
    admitted: tuple[tuple[int, ...], ...]
    proposals: int

    @property
    def unmatched(self) -> tuple[int, ...]:
        """Residents left without a hospital."""
        return tuple(r for r, h in enumerate(self.assignment) if h == -1)


def hospitals_residents(instance: HRInstance) -> HRResult:
    """Resident-proposing deferred acceptance (resident-optimal).

    Each unassigned resident applies down its list; a hospital holds its
    ``cap`` best applicants so far, bumping the worst when full.  The
    "rural hospitals" invariant — which residents end up unmatched and
    how many slots each hospital fills is the same in *every* stable
    matching — is exercised by the tests.

    >>> inst = HRInstance([[0], [0], [0]], [[0, 1, 2]], [2])
    >>> hospitals_residents(inst).assignment
    (0, 0, -1)
    """
    n_res = instance.n_residents
    # per-hospital max-heap of admitted residents, keyed by -rank... we
    # need to evict the WORST (highest rank), so store (-rank) min-heap
    # inverted: use heap of (-rank, r) and pop the largest rank.
    held: list[list[tuple[int, int]]] = [[] for _ in range(instance.n_hospitals)]
    assignment = [-1] * n_res
    next_choice = [0] * n_res
    free = list(range(n_res - 1, -1, -1))
    proposals = 0
    while free:
        r = free.pop()
        if assignment[r] != -1:
            continue
        row = instance.resident_prefs[r]
        while next_choice[r] < len(row):
            h = row[next_choice[r]]
            next_choice[r] += 1
            proposals += 1
            rank = instance.hospital_rank(h, r)
            if len(held[h]) < instance.capacities[h]:
                heapq.heappush(held[h], (-rank, r))
                assignment[r] = h
                break
            if instance.capacities[h] and -held[h][0][0] > rank:
                _, bumped = heapq.heapreplace(held[h], (-rank, r))
                assignment[r] = h
                assignment[bumped] = -1
                free.append(bumped)
                break
            # hospital full with better residents: try next choice
    admitted = tuple(
        tuple(r for _, r in sorted((-nr, r) for nr, r in held[h]))
        for h in range(instance.n_hospitals)
    )
    return HRResult(
        assignment=tuple(assignment), admitted=admitted, proposals=proposals
    )


def _check_hr_matching(
    instance: HRInstance, assignment: Sequence[int]
) -> list[int]:
    assignment = [int(h) for h in assignment]
    if len(assignment) != instance.n_residents:
        raise InvalidMatchingError("assignment must cover every resident")
    load = [0] * instance.n_hospitals
    for r, h in enumerate(assignment):
        if h == -1:
            continue
        if not 0 <= h < instance.n_hospitals:
            raise InvalidMatchingError(f"resident {r} assigned to unknown hospital {h}")
        if h not in instance.resident_prefs[r]:
            raise InvalidMatchingError(
                f"resident {r} assigned to unacceptable hospital {h}"
            )
        load[h] += 1
    for h, used in enumerate(load):
        if used > instance.capacities[h]:
            raise InvalidMatchingError(
                f"hospital {h} over capacity: {used} > {instance.capacities[h]}"
            )
    return assignment


def hr_blocking_pairs(
    instance: HRInstance, assignment: Sequence[int]
) -> list[tuple[int, int]]:
    """All blocking (resident, hospital) pairs of ``assignment``."""
    assignment = _check_hr_matching(instance, assignment)
    load = [0] * instance.n_hospitals
    worst_rank = [-1] * instance.n_hospitals
    for r, h in enumerate(assignment):
        if h != -1:
            load[h] += 1
            worst_rank[h] = max(worst_rank[h], instance.hospital_rank(h, r))
    out = []
    for r in range(instance.n_residents):
        cur = assignment[r]
        for h in instance.resident_prefs[r]:
            if cur != -1 and instance.resident_rank(r, cur) <= instance.resident_rank(r, h):
                break  # list is ordered: no better hospital remains
            rank = instance.hospital_rank(h, r)
            has_slot = load[h] < instance.capacities[h]
            prefers = load[h] > 0 and rank < worst_rank[h]
            if has_slot or prefers:
                out.append((r, h))
    return out


def is_stable_hr(instance: HRInstance, assignment: Sequence[int]) -> bool:
    """True iff no (resident, hospital) pair blocks."""
    return not hr_blocking_pairs(instance, assignment)


def random_hr_instance(
    n_residents: int,
    n_hospitals: int,
    *,
    total_capacity: int | None = None,
    seed: int | None | np.random.Generator = None,
) -> HRInstance:
    """Uniform random complete-list HR instance.

    ``total_capacity`` defaults to ``n_residents`` (tight market); it is
    split across hospitals uniformly at random, each getting >= 1.
    """
    if n_residents < 1 or n_hospitals < 1:
        raise InvalidInstanceError("need at least one resident and one hospital")
    rng = as_rng(seed)
    if total_capacity is None:
        total_capacity = n_residents
    if total_capacity < n_hospitals:
        raise InvalidInstanceError(
            "total capacity must give each hospital at least one slot"
        )
    caps = [1] * n_hospitals
    for _ in range(total_capacity - n_hospitals):
        caps[int(rng.integers(n_hospitals))] += 1
    return HRInstance(
        resident_prefs=[rng.permutation(n_hospitals).tolist() for _ in range(n_residents)],
        hospital_prefs=[rng.permutation(n_residents).tolist() for _ in range(n_hospitals)],
        capacities=caps,
    )


def couples_violations(
    instance: HRInstance,
    assignment: Sequence[int],
    couples: Sequence[tuple[int, int]],
) -> list[tuple[int, int]]:
    """Couples whose members were assigned to different hospitals.

    The couples-constrained HR problem is NP-complete (Ronn, cited by
    the paper); this checker quantifies how often the singles-optimal
    matching violates joint-assignment wishes, without pretending to
    solve the hard problem.
    """
    assignment = _check_hr_matching(instance, assignment)
    broken = []
    for a, b in couples:
        if not (0 <= a < instance.n_residents and 0 <= b < instance.n_residents):
            raise InvalidInstanceError(f"couple ({a}, {b}) references unknown residents")
        if assignment[a] != assignment[b] or assignment[a] == -1:
            broken.append((a, b))
    return broken
