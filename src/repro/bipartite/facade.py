"""One-call stable marriage with a selectable optimality criterion.

Downstream users usually want *a* stable matching with a particular
flavour, not the full engine/lattice/policy zoo.  This facade wraps the
lot:

>>> from repro.bipartite.facade import stable_marriage
>>> stable_marriage([[0, 1], [1, 0]], [[1, 0], [0, 1]], optimal="proposer")
(0, 1)
>>> stable_marriage([[0, 1], [1, 0]], [[1, 0], [0, 1]], optimal="responder")
(1, 0)
"""

from __future__ import annotations

import numpy as np

from repro.bipartite.gale_shapley import gale_shapley
from repro.exceptions import ConfigurationError
from repro.bipartite.lattice import (
    egalitarian_stable_matching,
    minimum_regret_stable_matching,
    sex_equal_stable_matching,
)

__all__ = ["stable_marriage", "CRITERIA"]

#: Supported optimality criteria.
CRITERIA = ("proposer", "responder", "egalitarian", "min_regret", "sex_equal")


def stable_marriage(
    proposer_prefs: np.ndarray,
    responder_prefs: np.ndarray,
    *,
    optimal: str = "proposer",
) -> tuple[int, ...]:
    """Return a stable matching (proposer index -> responder index).

    ``optimal`` selects which stable matching:

    * ``"proposer"`` — proposer-optimal (plain GS, O(n²));
    * ``"responder"`` — responder-optimal (GS with roles swapped);
    * ``"egalitarian"`` / ``"min_regret"`` / ``"sex_equal"`` — the
      lattice optima (exact, output-polynomial — they enumerate the
      stable set, so reserve them for moderate n or small lattices).
    """
    if optimal == "proposer":
        return gale_shapley(proposer_prefs, responder_prefs).matching
    if optimal == "responder":
        inv = gale_shapley(responder_prefs, proposer_prefs).matching
        n = len(inv)
        out = [0] * n
        for responder, proposer in enumerate(inv):
            out[proposer] = responder
        return tuple(out)
    if optimal == "egalitarian":
        return egalitarian_stable_matching(proposer_prefs, responder_prefs)[0]
    if optimal == "min_regret":
        return minimum_regret_stable_matching(proposer_prefs, responder_prefs)[0]
    if optimal == "sex_equal":
        return sex_equal_stable_matching(proposer_prefs, responder_prefs)[0]
    raise ConfigurationError(f"unknown criterion {optimal!r}; choose from {CRITERIA}")
