"""Exhaustive enumeration of stable matchings (small instances).

Used as ground truth by the property tests (the Gale-Shapley engines
must return the proposer-optimal element of this set) and by the
Theorem 4 experiment, which needs *every* stable matching of each
binding edge to show that no combination of three pairwise-stable
bindings is mutually consistent.

Enumeration is a permutation backtracking search with blocking-pair
pruning: partial assignments are abandoned as soon as an already-placed
pair blocks.  Worst case remains factorial, so callers should keep
n ≲ 9; every use in this library does.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.utils.ordering import rank_array

__all__ = ["all_stable_matchings", "count_stable_matchings"]


def all_stable_matchings(
    proposer_prefs: np.ndarray, responder_prefs: np.ndarray
) -> Iterator[dict[int, int]]:
    """Yield every stable perfect matching as a proposer -> responder dict.

    Matchings are produced in lexicographic order of the assignment
    vector, so output is deterministic.

    >>> [sorted(m.items()) for m in all_stable_matchings(
    ...     [[0, 1], [1, 0]], [[1, 0], [0, 1]])]
    [[(0, 0), (1, 1)], [(0, 1), (1, 0)]]
    """
    p = np.asarray(proposer_prefs, dtype=np.int64)
    r = np.asarray(responder_prefs, dtype=np.int64)
    n = p.shape[0]
    p_rank = np.array([rank_array(row.tolist()) for row in p])
    r_rank = np.array([rank_array(row.tolist()) for row in r])

    assign: list[int] = [-1] * n
    used = [False] * n

    def compatible(i: int, j: int) -> bool:
        """No blocking pair arises among placed pairs when i-j is added.

        Two checks per earlier pair (i2, j2):
        * (i, j2) blocks if i prefers j2 to j and j2 prefers i to i2;
        * (i2, j) blocks if i2 prefers j to j2 and j prefers i2 to i.

        A third possibility — (i, j) itself blocking with a *future*
        pair — is caught when that future pair is placed.
        """
        for i2 in range(i):
            j2 = assign[i2]
            if p_rank[i, j2] < p_rank[i, j] and r_rank[j2, i] < r_rank[j2, i2]:
                return False
            if p_rank[i2, j] < p_rank[i2, j2] and r_rank[j, i2] < r_rank[j, i]:
                return False
        return True

    def rec(i: int) -> Iterator[dict[int, int]]:
        if i == n:
            yield dict(enumerate(assign))
            return
        for j in range(n):
            if used[j] or not compatible(i, j):
                continue
            assign[i] = j
            used[j] = True
            yield from rec(i + 1)
            used[j] = False
            assign[i] = -1

    yield from rec(0)


def count_stable_matchings(proposer_prefs: np.ndarray, responder_prefs: np.ndarray) -> int:
    """Number of stable matchings of the instance (exhaustive)."""
    return sum(1 for _ in all_stable_matchings(proposer_prefs, responder_prefs))
