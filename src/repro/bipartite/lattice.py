"""The stable-matching lattice: rotations, full enumeration, optima.

Background (Gusfield & Irving): the stable matchings of an SMP instance
form a distributive lattice between the man-optimal matching M0 (what
man-proposing GS returns) and the woman-optimal Mz.  Moving down the
lattice = eliminating *rotations* — exactly the "loops of alternating
first and second preferences" of the paper's Section III.B, specialized
to the bipartite case where every rotation lives on one side.

This module enumerates the **entire** stable set with polynomial delay
per matching by exploring rotation eliminations on the roommates table
(reusing :class:`~repro.roommates.irving.IrvingSolver` with ``clone``),
and selects distinguished elements:

* :func:`egalitarian_stable_matching` — minimum total rank cost, the
  natural "socially best" compromise the paper's fairness discussion
  gestures at;
* :func:`minimum_regret_stable_matching` — minimax single rank;
* :func:`sex_equal_stable_matching` — minimum |man cost - woman cost|.

Complexity: O(n²) per emitted matching plus memoization overhead; the
stable set itself can be exponential in n (e.g. 2^(n/2) for stacked
2x2 blocks), so callers iterate lazily.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.bipartite.fairness import matching_costs
from repro.exceptions import SimulationError
from repro.roommates.instance import RoommatesInstance
from repro.roommates.irving import IrvingSolver

__all__ = [
    "all_stable_matchings_lattice",
    "count_stable_matchings_lattice",
    "all_rotations",
    "egalitarian_stable_matching",
    "minimum_regret_stable_matching",
    "sex_equal_stable_matching",
]


def _phase1_solver(proposer_prefs: np.ndarray, responder_prefs: np.ndarray) -> IrvingSolver:
    """Build the SMP-as-roommates table and run phase 1."""
    p = np.asarray(proposer_prefs, dtype=np.int64)
    r = np.asarray(responder_prefs, dtype=np.int64)
    n = p.shape[0]
    prefs: list[list[int]] = []
    for i in range(n):
        prefs.append([int(w) + n for w in p[i]])
    for j in range(n):
        prefs.append([int(m) for m in r[j]])
    solver = IrvingSolver(RoommatesInstance(prefs, symmetrize=False))
    solver.run_phase1()
    return solver


def _current_matching(solver: IrvingSolver, n: int) -> tuple[int, ...]:
    """The man-optimal matching of the solver's current sub-lattice:
    every man engaged to the first entry of his reduced list."""
    out = []
    for m in range(n):
        w = solver.fiance[m]
        if w < n:  # pragma: no cover - SMP tables alternate sides
            raise SimulationError("man engaged to a man in an SMP table")
        out.append(w - n)
    return tuple(out)


def all_stable_matchings_lattice(
    proposer_prefs: np.ndarray, responder_prefs: np.ndarray
) -> Iterator[tuple[int, ...]]:
    """Yield **every** stable matching, starting from the man-optimal.

    Exploration: each table state contributes its man-optimal matching,
    then branches on every exposed man-side rotation (eliminating a
    rotation moves down the lattice).  States and matchings are memoized
    so each stable matching is emitted exactly once.

    >>> sorted(all_stable_matchings_lattice([[0, 1], [1, 0]],
    ...                                     [[1, 0], [0, 1]]))
    [(0, 1), (1, 0)]
    """
    p = np.asarray(proposer_prefs, dtype=np.int64)
    n = int(p.shape[0])
    if n == 0:
        yield ()
        return
    root = _phase1_solver(proposer_prefs, responder_prefs)
    seen_states: set[tuple] = set()
    seen_matchings: set[tuple[int, ...]] = set()
    stack = [root]
    while stack:
        solver = stack.pop()
        state_key = tuple(solver.reduced_list(m) for m in range(n))
        if state_key in seen_states:
            continue
        seen_states.add(state_key)
        matching = _current_matching(solver, n)
        if matching not in seen_matchings:
            seen_matchings.add(matching)
            yield matching
        candidates = [m for m in range(n) if len(solver.reduced_list(m)) > 1]
        rotations = {}
        for pivot in candidates:
            rot = solver._expose_rotation(pivot)
            rotations[frozenset(rot.pairs)] = rot
        for rot in rotations.values():
            child = solver.clone()
            child._eliminate(rot)
            child._propose_all()
            stack.append(child)


def count_stable_matchings_lattice(
    proposer_prefs: np.ndarray, responder_prefs: np.ndarray
) -> int:
    """Size of the stable set (by full lattice enumeration)."""
    return sum(1 for _ in all_stable_matchings_lattice(proposer_prefs, responder_prefs))


def all_rotations(
    proposer_prefs: np.ndarray, responder_prefs: np.ndarray
) -> set[frozenset[tuple[int, int]]]:
    """Every man-side rotation of the instance (as frozen pair sets,
    man ids 0..n-1, woman ids n..2n-1 following the roommates encoding).

    The rotation count equals the number of lattice edges' labels; the
    cyclic family :func:`repro.model.generators.cyclic_smp` has exactly
    n-1 nested rotations, for instance.
    """
    p = np.asarray(proposer_prefs, dtype=np.int64)
    n = int(p.shape[0])
    found: set[frozenset[tuple[int, int]]] = set()
    seen_states: set[tuple] = set()
    stack = [_phase1_solver(proposer_prefs, responder_prefs)]
    while stack:
        solver = stack.pop()
        state_key = tuple(solver.reduced_list(m) for m in range(n))
        if state_key in seen_states:
            continue
        seen_states.add(state_key)
        for pivot in [m for m in range(n) if len(solver.reduced_list(m)) > 1]:
            rot = solver._expose_rotation(pivot)
            key = frozenset(rot.pairs)
            found.add(key)
            child = solver.clone()
            child._eliminate(rot)
            child._propose_all()
            stack.append(child)
    return found


def _best_by(
    proposer_prefs: np.ndarray,
    responder_prefs: np.ndarray,
    score,
) -> tuple[tuple[int, ...], object]:
    best = None
    best_score = None
    for matching in all_stable_matchings_lattice(proposer_prefs, responder_prefs):
        costs = matching_costs(proposer_prefs, responder_prefs, list(matching))
        s = score(costs)
        if best_score is None or s < best_score:
            best, best_score = matching, s
    assert best is not None  # SMP always has >= 1 stable matching
    return best, best_score


def egalitarian_stable_matching(
    proposer_prefs: np.ndarray, responder_prefs: np.ndarray
) -> tuple[tuple[int, ...], int]:
    """The stable matching minimizing total (both-side) rank cost.

    Returns ``(matching, egalitarian_cost)``.  Found by scanning the
    lattice enumeration — output-polynomial, exact.
    """
    m, s = _best_by(proposer_prefs, responder_prefs, lambda c: c.egalitarian)
    return m, int(s)


def minimum_regret_stable_matching(
    proposer_prefs: np.ndarray, responder_prefs: np.ndarray
) -> tuple[tuple[int, ...], int]:
    """The stable matching minimizing the worst single rank (minimax)."""
    m, s = _best_by(
        proposer_prefs, responder_prefs, lambda c: (c.regret, c.egalitarian)
    )
    return m, int(s[0])


def sex_equal_stable_matching(
    proposer_prefs: np.ndarray, responder_prefs: np.ndarray
) -> tuple[tuple[int, ...], int]:
    """The stable matching minimizing |proposer cost - responder cost|."""
    m, s = _best_by(
        proposer_prefs, responder_prefs, lambda c: (c.sex_equality, c.egalitarian)
    )
    return m, int(s[0])
