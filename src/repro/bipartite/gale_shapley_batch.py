"""Arena-encoded stacked Gale-Shapley: solve many instances in one pass.

Production traffic is thousands of *small* same-shape instances (the
loadgen pool, Mertens-style random ensembles).  Solving them one at a
time leaves the per-call Python dispatch — validation, engine setup,
round bookkeeping — as the dominant cost at n ≤ 64.  This module packs a
``(count, n, n)`` stack of preference tensors into one flat int arena
and runs the round-synchronous vectorized engine across *all* instances
at once: a single proposal round advances every instance, and instances
that have converged simply contribute no free proposers (they are masked
out by construction, at zero cost).

Equivalence guarantees (pinned by ``tests/bipartite/test_gs_batch.py``):

* the matching per instance is identical to every single-instance
  engine (proposal order never changes the GS outcome);
* the per-instance proposal total is identical to ``_gs_textbook``'s
  (each proposer proposes to exactly the prefix of its list ending at
  its final partner — a schedule-invariant quantity).

Arena layout
------------
Member ``row`` of instance ``c`` gets the global index ``c * n + row``;
both the ``(count·n, n)`` preference table and all engine state (next
choice pointer, engagement, holds) live at that index.  Because a
proposal can only target a responder in the same instance, every global
target index is ``c * n + local``, so the round kernel is exactly the
single-instance vectorized kernel on a ``count·n``-member "instance"
whose preference rows are *local* (the instance offset is added once per
round, not stored).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bipartite.gale_shapley import (
    AUTO_CROSSOVER_N,
    BATCH_CROSSOVER_WORK,
    GSResult,
)
from repro.exceptions import InvalidInstanceError
from repro.obs.sink import ObsSink
from repro.utils.ordering import NotAPermutationError, rank_matrix

__all__ = [
    "GSBatchResult",
    "gale_shapley_batch",
    "resolve_batch_strategy",
    "BATCH_CROSSOVER_WORK",
]


def resolve_batch_strategy(count: int, n: int) -> str:
    """How ``engine="auto"`` should solve a ``count``-instance batch at size ``n``.

    Returns ``"stacked"`` when the measured crossover grid (see
    docs/PERFORMANCE.md, "Batched solving") says the arena engine beats
    a per-instance loop, else ``"loop"``.  Three regimes feed the rule:

    * ``count >= 2n`` — tiny instances, where the loop's per-call
      dispatch dominates and stacking wins from single-digit counts;
    * ``count * n >=`` :data:`~repro.bipartite.gale_shapley.BATCH_CROSSOVER_WORK`
      — enough total work to amortize the stack's fixed round overhead;
    * ``n >= AUTO_CROSSOVER_N / 2`` — near the solo vectorized
      crossover, where stacking only amortizes further.
    """
    if count < 2:
        return "loop"
    if (
        count >= 2 * n
        or count * n >= BATCH_CROSSOVER_WORK
        or n >= AUTO_CROSSOVER_N // 2
    ):
        return "stacked"
    return "loop"


@dataclass(frozen=True)
class GSBatchResult:
    """Outcome of one stacked Gale-Shapley run over ``count`` instances.

    Attributes
    ----------
    matchings:
        ``(count, n)`` array; ``matchings[c, i]`` is the responder index
        matched to proposer ``i`` of instance ``c``.
    proposals:
        ``(count,)`` array of per-instance proposal totals (each equal
        to what the textbook engine would report for that instance).
    rounds:
        ``(count,)`` array: synchronous rounds in which instance ``c``
        still had free proposers (its solo ``vectorized`` round count).
    rounds_total:
        Global rounds executed — ``max(rounds)`` — i.e. the number of
        kernel iterations the whole stack needed.
    """

    matchings: np.ndarray
    proposals: np.ndarray
    rounds: np.ndarray
    rounds_total: int

    @property
    def count(self) -> int:
        """Number of instances in the stack."""
        return int(self.matchings.shape[0])

    @property
    def n(self) -> int:
        """Members per side of each instance."""
        return int(self.matchings.shape[1])

    def result(self, c: int) -> GSResult:
        """Instance ``c``'s outcome as a single-instance :class:`GSResult`."""
        return GSResult(
            matching=tuple(int(x) for x in self.matchings[c]),
            proposals=int(self.proposals[c]),
            rounds=int(self.rounds[c]),
            engine="stacked",
        )


def _validate_stack(
    proposer_stack: np.ndarray,
    responder_stack: "np.ndarray | None",
    responder_ranks: "np.ndarray | None",
    trusted: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate shapes/permutations; return flat ``(c·n, n)`` prefs+ranks."""
    p = np.ascontiguousarray(np.asarray(proposer_stack, dtype=np.int64))
    if p.ndim != 3 or p.shape[1] != p.shape[2]:
        raise InvalidInstanceError(
            f"proposer_stack must have shape (count, n, n), got {p.shape}"
        )
    count, n = p.shape[0], p.shape[1]
    if count == 0:
        raise InvalidInstanceError("proposer_stack must contain at least one instance")
    if n == 0:
        raise InvalidInstanceError("instances must have n >= 1 members per side")
    if (responder_stack is None) == (responder_ranks is None):
        raise InvalidInstanceError(
            "pass exactly one of responder_stack or responder_ranks"
        )
    flat_p = p.reshape(count * n, n)
    if not trusted:
        try:
            rank_matrix(flat_p)  # proposer rows must be permutations too
        except NotAPermutationError as exc:
            raise InvalidInstanceError(
                f"instance {exc.row // n} proposer {exc.row % n}: {exc}"
            ) from exc
    if responder_stack is not None:
        r = np.asarray(responder_stack, dtype=np.int64)
        if r.shape != p.shape:
            raise InvalidInstanceError(
                f"responder_stack shape {r.shape} must match proposer_stack {p.shape}"
            )
        try:
            flat_rank = rank_matrix(r.reshape(count * n, n))
        except NotAPermutationError as exc:
            raise InvalidInstanceError(
                f"instance {exc.row // n} responder {exc.row % n}: {exc}"
            ) from exc
    else:
        # Precomputed ranks (e.g. straight from KPartiteInstance's rank
        # tensor): trusted to be permutation inverses; only shape-checked
        # so the hot path skips the argsort entirely.
        rr = np.asarray(responder_ranks, dtype=np.int64)
        if rr.shape != p.shape:
            raise InvalidInstanceError(
                f"responder_ranks shape {rr.shape} must match proposer_stack {p.shape}"
            )
        flat_rank = np.ascontiguousarray(rr).reshape(count * n, n)
    return flat_p, flat_rank


def _gs_stacked(
    flat_p: np.ndarray, flat_rank: np.ndarray, count: int, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """The arena round kernel.  All state is flat over ``count·n`` slots."""
    total = count * n
    next_choice = np.zeros(total, dtype=np.int64)
    engaged_to = np.full(total, -1, dtype=np.int64)  # global responder index
    holds = np.full(total, -1, dtype=np.int64)  # global proposer index
    rounds = np.zeros(count, dtype=np.int64)
    # Per-instance free-proposer counts: an instance is active in every
    # round from the first until the round it finishes (an unfinished
    # instance always has a free proposer), so its round count is simply
    # the global round number at the moment its count hits zero.
    free_count = np.full(count, n, dtype=np.int64)
    worst = n
    rounds_total = 0
    free = np.arange(total, dtype=np.int64)
    while free.size:
        rounds_total += 1
        nxt = next_choice[free]
        if np.any(nxt >= n):
            bad = int(free[np.argmax(nxt >= n)])
            raise InvalidInstanceError(
                f"instance {bad // n} proposer {bad % n} exhausted its list"
            )
        free_inst = free // n
        off = free_inst * n
        # Preference rows hold *local* responder indices; lift to global
        # once so the rest of the round is instance-oblivious.  Per-round
        # cost is O(free proposers log free proposers) — converged
        # instances contribute nothing, they are gone from ``free``.
        targets = flat_p[free, nxt] + off
        next_choice[free] += 1
        # rank responder j (global) assigns suitor i: local column i - off
        suitor_rank = flat_rank[targets, free - off]
        # Batch winner per responder: sort the (target, rank) key — which
        # is unique, responders rank suitors distinctly — so each
        # target's best suitor leads its run.  Measurably faster than a
        # np.minimum.at scatter-reduce.
        order = np.argsort(targets * (n + 1) + suitor_rank)
        st = targets[order]
        lead = np.empty(order.size, dtype=bool)
        lead[0] = True
        np.not_equal(st[1:], st[:-1], out=lead[1:])
        cand = order[lead]  # round-array position of each target's best
        cand_resps = targets[cand]
        # the winner displaces the pre-round hold iff it outranks it
        cur = holds[cand_resps]
        hold_rank = np.where(cur >= 0, flat_rank[cand_resps, cur % n], worst)
        win = cand[suitor_rank[cand] < hold_rank]
        win_props = free[win]
        win_resps = targets[win]
        dumped = holds[win_resps]
        holds[win_resps] = win_props
        engaged_to[win_props] = win_resps
        winners = np.zeros(free.size, dtype=bool)
        winners[win] = True
        refreed = dumped >= 0
        # wins over an empty hold shrink the instance's free pool; the
        # instances that just hit zero finished in this round
        first_time = win_resps[~refreed] // n
        if first_time.size:
            np.subtract.at(free_count, first_time, 1)
            rounds[(free_count == 0) & (rounds == 0)] = rounds_total
        free = np.concatenate([free[~winners], dumped[refreed]])
    matchings = (engaged_to % n).reshape(count, n)
    proposals = next_choice.reshape(count, n).sum(axis=1)
    return matchings, proposals, rounds, rounds_total


def gale_shapley_batch(
    proposer_stack: np.ndarray,
    responder_stack: "np.ndarray | None" = None,
    *,
    responder_ranks: "np.ndarray | None" = None,
    trusted: bool = False,
    sink: "ObsSink | None" = None,
) -> GSBatchResult:
    """Solve a same-shape stack of instances in one vectorized pass.

    Parameters
    ----------
    proposer_stack:
        ``(count, n, n)`` array; ``proposer_stack[c, i]`` is proposer
        ``i``'s preference list (over responder indices, best first) in
        instance ``c``.
    responder_stack:
        ``(count, n, n)`` responder preference lists, same layout.
        Mutually exclusive with ``responder_ranks``.
    responder_ranks:
        ``(count, n, n)`` *precomputed* responder rank tables
        (``responder_ranks[c, j, i]`` = rank responder ``j`` assigns
        proposer ``i``; lower is better) — pass this when the caller
        already holds inverted tables (e.g. a
        :class:`~repro.model.KPartiteInstance` rank tensor) to skip the
        argsort.  Rank rows are shape-checked but trusted to be
        permutation inverses.
    trusted:
        Skip the proposer permutation re-check.  Pass ``True`` only when
        the stack comes from tensors a :class:`~repro.model.KPartiteInstance`
        already validated at construction — the check costs as much as
        the solve itself at small n.  Shape checks always run.
    sink:
        Optional :class:`~repro.obs.sink.ObsSink`: wraps the run in a
        ``gs.batch`` span tagged with count, n, total proposals and
        global rounds, and feeds ``gs.batch.*`` counters.

    Returns
    -------
    GSBatchResult
        Per-instance proposer-optimal matchings plus proposal/round
        totals identical to the single-instance engines'.

    Examples
    --------
    >>> res = gale_shapley_batch(
    ...     [[[0, 1], [0, 1]], [[1, 0], [1, 0]]],
    ...     [[[1, 0], [1, 0]], [[0, 1], [0, 1]]],
    ... )
    >>> res.matchings.tolist()
    [[1, 0], [1, 0]]
    """
    flat_p, flat_rank = _validate_stack(
        proposer_stack, responder_stack, responder_ranks, trusted
    )
    n = flat_p.shape[1]
    count = flat_p.shape[0] // n
    if sink is None:
        matchings, proposals, rounds, rounds_total = _gs_stacked(
            flat_p, flat_rank, count, n
        )
    else:
        with sink.span("gs.batch", count=count, n=n) as sp:
            matchings, proposals, rounds, rounds_total = _gs_stacked(
                flat_p, flat_rank, count, n
            )
            sp.set(proposals=int(proposals.sum()), rounds=rounds_total)
        sink.incr("gs.batch.runs")
        sink.incr("gs.batch.instances", count)
        sink.incr("gs.proposals", int(proposals.sum()))
        sink.observe("gs.batch.instances_per_run", count)
    return GSBatchResult(
        matchings=matchings,
        proposals=proposals,
        rounds=rounds,
        rounds_total=rounds_total,
    )
