"""Classic bipartite stable matching (the Gale-Shapley substrate).

Everything here operates on *raw arrays* — ``(n, n)`` integer preference
matrices, one row per participant, best first — so the same engines can
be reused by every higher layer: a binding edge of Algorithm 1, the
distributed simulator, and the parallel executor all hand slices of a
:class:`repro.model.KPartiteInstance` (via ``bipartite_view``) straight
to these functions.

Three interchangeable engines produce the identical proposer-optimal
matching:

* ``"textbook"`` — the classic free-list algorithm, O(n²);
* ``"rounds"`` — round-synchronous proposals (all free proposers act
  each round; the distributed algorithm's schedule);
* ``"vectorized"`` — the round-synchronous engine with NumPy batch
  operations per round (fastest for large n).
"""

from repro.bipartite.gale_shapley import GSResult, gale_shapley, ENGINES
from repro.bipartite.gale_shapley_batch import (
    GSBatchResult,
    gale_shapley_batch,
    resolve_batch_strategy,
    BATCH_CROSSOVER_WORK,
)
from repro.bipartite.verify import blocking_pairs, is_stable, assert_perfect
from repro.bipartite.enumerate import all_stable_matchings, count_stable_matchings
from repro.bipartite.lattice import (
    all_stable_matchings_lattice,
    count_stable_matchings_lattice,
    all_rotations,
    egalitarian_stable_matching,
    minimum_regret_stable_matching,
    sex_equal_stable_matching,
)
from repro.bipartite.facade import stable_marriage, CRITERIA
from repro.bipartite.strategy import (
    MisreportResult,
    best_misreport,
    proposer_truthfulness_holds,
)
from repro.bipartite.hospitals import (
    HRInstance,
    HRResult,
    hospitals_residents,
    hr_blocking_pairs,
    is_stable_hr,
    random_hr_instance,
    couples_violations,
)
from repro.bipartite.fairness import (
    proposer_cost,
    responder_cost,
    egalitarian_cost,
    sex_equality_cost,
    regret,
    MatchingCosts,
    matching_costs,
)

__all__ = [
    "GSResult",
    "gale_shapley",
    "ENGINES",
    "GSBatchResult",
    "gale_shapley_batch",
    "resolve_batch_strategy",
    "BATCH_CROSSOVER_WORK",
    "blocking_pairs",
    "is_stable",
    "assert_perfect",
    "all_stable_matchings",
    "count_stable_matchings",
    "all_stable_matchings_lattice",
    "count_stable_matchings_lattice",
    "all_rotations",
    "egalitarian_stable_matching",
    "minimum_regret_stable_matching",
    "sex_equal_stable_matching",
    "proposer_cost",
    "responder_cost",
    "egalitarian_cost",
    "sex_equality_cost",
    "regret",
    "MatchingCosts",
    "matching_costs",
    "stable_marriage",
    "CRITERIA",
    "MisreportResult",
    "best_misreport",
    "proposer_truthfulness_holds",
    "HRInstance",
    "HRResult",
    "hospitals_residents",
    "hr_blocking_pairs",
    "is_stable_hr",
    "random_hr_instance",
    "couples_violations",
]
