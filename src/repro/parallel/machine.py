"""An instruction-level PRAM machine with memory-access conflict checks.

:mod:`repro.parallel.pram` models Section IV.C at *task* granularity
(one binding = one task).  This module goes one level down: a
synchronous shared-memory machine whose processors execute lockstep
steps, each split into a **read phase** and a **write phase**, with the
access discipline enforced per memory cell:

* EREW — within one step, no cell may be read by two processors, nor
  written by two processors;
* CREW — concurrent reads allowed, writes still exclusive.

Programs are per-processor generators: each ``yield Op(reads=...)``
suspends until the machine supplies the read values, then the program
computes and yields (or returns) its writes.  The machine validates
every phase and counts steps, so the paper's claims become *machine
checkable*: the one-step CREW broadcast is rejected by an EREW machine
(read conflict on the source cell), while the ⌈log₂ n⌉ doubling
broadcast passes; the one-round star-tree binding plan is rejected by
EREW (the hub gender's block is read by k-1 processors) and accepted by
CREW.

This is deliberately a *model* machine — values are Python objects and
"computation" is arbitrary — because what the experiments measure is
steps and conflicts, not ALU throughput.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Iterable, Sequence
from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import ScheduleConflictError, SimulationError

__all__ = [
    "AccessModel",
    "Op",
    "PRAMMachine",
    "broadcast_doubling_program",
    "broadcast_naive_program",
    "sum_reduction_program",
    "binding_read_program",
]


class AccessModel(Enum):
    """Memory access discipline."""

    EREW = "EREW"
    CREW = "CREW"


@dataclass(frozen=True)
class Op:
    """One machine step of one processor.

    Attributes
    ----------
    reads:
        Cell addresses to read this step; their values are sent back
        into the generator as a tuple, in order.
    writes:
        ``(address, value)`` pairs applied in this step's write phase
        (the values were computed from the *previous* step's reads —
        standard PRAM semantics where reads precede writes).
    """

    reads: tuple[int, ...] = ()
    writes: tuple[tuple[int, object], ...] = ()


Program = Generator[Op, tuple, None]
ProgramFactory = Callable[[int], Program]


@dataclass
class PRAMMachine:
    """A synchronous PRAM with ``n_processors`` and ``memory_size`` cells.

    Examples
    --------
    >>> machine = PRAMMachine(2, 4, model="EREW")
    >>> machine.memory[0] = 42
    >>> machine.run(broadcast_doubling_program(4))  # 2 doublings x (read, write)
    4
    >>> machine.memory
    [42, 42, 42, 42]
    """

    n_processors: int
    memory_size: int
    model: AccessModel | str = AccessModel.EREW
    memory: list = field(default_factory=list)
    steps: int = 0
    reads_served: int = 0
    writes_applied: int = 0

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise SimulationError("need at least one processor")
        if self.memory_size < 0:
            raise SimulationError("memory size must be non-negative")
        if not isinstance(self.model, AccessModel):
            self.model = AccessModel(self.model)
        if not self.memory:
            self.memory = [0] * self.memory_size

    def _check_addr(self, addr: int, what: str) -> None:
        if not 0 <= addr < self.memory_size:
            raise SimulationError(f"{what} of cell {addr} outside memory")

    def run(self, factory: ProgramFactory, *, max_steps: int = 10_000) -> int:
        """Run one program instance per processor to completion.

        Returns the number of synchronous steps executed.  Raises
        :class:`ScheduleConflictError` on an access violation and
        :class:`SimulationError` on runaway programs or bad addresses.
        """
        programs: list[Program | None] = [
            factory(pid) for pid in range(self.n_processors)
        ]
        pending: list[Op | None] = []
        for pid, prog in enumerate(programs):
            try:
                pending.append(next(prog))  # type: ignore[arg-type]
            except StopIteration:
                programs[pid] = None
                pending.append(None)
        while any(p is not None for p in programs):
            if self.steps >= max_steps:
                raise SimulationError(f"program exceeded {max_steps} steps")
            self.steps += 1
            # --- read phase ---------------------------------------
            readers: dict[int, int] = {}
            for pid, op in enumerate(pending):
                if op is None:
                    continue
                for addr in op.reads:
                    self._check_addr(addr, f"processor {pid} read")
                    if addr in readers and self.model is AccessModel.EREW:
                        raise ScheduleConflictError(
                            f"EREW read conflict on cell {addr}: processors "
                            f"{readers[addr]} and {pid} in step {self.steps}"
                        )
                    readers.setdefault(addr, pid)
            read_values = [
                tuple(self.memory[a] for a in op.reads) if op is not None else ()
                for op in pending
            ]
            self.reads_served += sum(len(op.reads) for op in pending if op)
            # --- write phase --------------------------------------
            writers: dict[int, int] = {}
            staged: list[tuple[int, object]] = []
            for pid, op in enumerate(pending):
                if op is None:
                    continue
                for addr, value in op.writes:
                    self._check_addr(addr, f"processor {pid} write")
                    if addr in writers:
                        raise ScheduleConflictError(
                            f"write conflict on cell {addr}: processors "
                            f"{writers[addr]} and {pid} in step {self.steps}"
                        )
                    writers[addr] = pid
                    staged.append((addr, value))
            for addr, value in staged:
                self.memory[addr] = value
            self.writes_applied += len(staged)
            # --- advance programs ---------------------------------
            for pid, prog in enumerate(programs):
                if prog is None:
                    continue
                try:
                    pending[pid] = prog.send(read_values[pid])
                except StopIteration:
                    programs[pid] = None
                    pending[pid] = None
        return self.steps


# ----------------------------------------------------------------------
# reference programs
# ----------------------------------------------------------------------


def broadcast_doubling_program(delta: int) -> ProgramFactory:
    """EREW-legal broadcast of cell 0 into cells 0..delta-1 by doubling.

    Step r: processor p < 2^r reads cell p and writes cell p + 2^r.
    Finishes in ⌈log₂ delta⌉ steps (matching
    :func:`repro.parallel.replication.replication_rounds`).
    """

    def factory(pid: int) -> Program:
        def prog() -> Program:
            have = 1
            while have < delta:
                target = pid + have
                if pid < have and target < delta:
                    (value,) = yield Op(reads=(pid,))
                    yield Op(writes=((target, value),))
                else:
                    yield Op()  # idle this doubling round (stay in sync)
                    yield Op()
                have *= 2

        return prog()

    return factory


def broadcast_naive_program(delta: int) -> ProgramFactory:
    """The one-step CREW broadcast: every processor reads cell 0 at once.

    Legal under CREW; an EREW machine must raise
    :class:`ScheduleConflictError` when delta > 1 — the machine-level
    content of Section IV.C's replication discussion.
    """

    def factory(pid: int) -> Program:
        def prog() -> Program:
            if pid < delta:
                (value,) = yield Op(reads=(0,))
                if pid > 0:
                    yield Op(writes=((pid, value),))

        return prog()

    return factory


def sum_reduction_program(n: int) -> ProgramFactory:
    """Classic ⌈log₂ n⌉ tree reduction: cell 0 ends with sum(memory[:n]).

    Step r (stride s = 2^r): processor p with p ≡ 0 (mod 2s) and
    p + s < n reads cells p and p + s, then writes their sum to p.
    """

    def factory(pid: int) -> Program:
        def prog() -> Program:
            stride = 1
            while stride < n:
                active = pid % (2 * stride) == 0 and pid + stride < n
                if active:
                    mine, other = yield Op(reads=(pid, pid + stride))
                    yield Op(writes=((pid, mine + other),))
                else:
                    yield Op()
                    yield Op()
                stride *= 2

        return prog()

    return factory


def binding_read_program(
    edges: Sequence[tuple[int, int]], rounds: Iterable[Sequence[int]]
) -> ProgramFactory:
    """Model one binding per processor reading its two genders' blocks.

    ``edges[p]`` is processor p's binding; gender g's preference block
    is memory cell g.  ``rounds`` schedules which processors act in each
    step (indices into ``edges``).  Under EREW, two same-step bindings
    sharing a gender raise :class:`ScheduleConflictError` — the
    machine-level statement of Corollary 1's Δ-round requirement.
    """
    schedule = [tuple(r) for r in rounds]

    def factory(pid: int) -> Program:
        def prog() -> Program:
            for active in schedule:
                if pid < len(edges) and pid in active:
                    g, h = edges[pid]
                    yield Op(reads=(g, h))
                else:
                    yield Op()

        return prog()

    return factory
