"""Real parallel execution of independent bindings.

The bindings inside one schedule round share no mutable state, so they
are embarrassingly parallel.  CPython's GIL prevents *thread* speedup
for this CPU-bound work, so the default backend is a process pool; the
worker receives plain NumPy arrays (cheap to pickle) and returns the
matched pairs plus instrumentation.

Backends:

* ``"process"`` — ``concurrent.futures.ProcessPoolExecutor`` (true
  parallelism; per-task pickling overhead, worthwhile for large n);
* ``"thread"`` — ``ThreadPoolExecutor`` (kept for measurement: shows
  the GIL ceiling explicitly in benchmark E11);
* ``"serial"`` — run rounds in order in-process (baseline).
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bipartite.gale_shapley import GSResult, gale_shapley
from repro.exceptions import ConfigurationError, InvalidBindingTreeError
from repro.core.binding_tree import BindingTree
from repro.core.kary_matching import KAryMatching
from repro.model.instance import KPartiteInstance
from repro.model.members import Member
from repro.obs.sink import ObsSink
from repro.parallel.schedule import Schedule, greedy_tree_schedule, validate_schedule

__all__ = [
    "BACKENDS",
    "ParallelBindingReport",
    "run_bindings_parallel",
    "validate_backend",
]

BACKENDS = ("process", "thread", "serial")


def validate_backend(backend: str) -> str:
    """Check ``backend`` against :data:`BACKENDS` and return it.

    The single validation path shared by this executor, the
    :mod:`repro.engine` serving layer, and the CLI — raising
    :class:`~repro.exceptions.ConfigurationError` on unknown names so
    every caller reports the same message.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    return backend


def _bind_worker(
    args: tuple[tuple[int, int], np.ndarray, np.ndarray, str]
) -> tuple[tuple[int, int], tuple[int, ...], int, int]:
    """Top-level worker (must be picklable): run one binding."""
    edge, p_prefs, r_prefs, engine = args
    res = gale_shapley(p_prefs, r_prefs, engine=engine)
    return edge, res.matching, res.proposals, res.rounds


def _run_round_instrumented(
    pool: Executor | None,
    tasks: list[tuple[tuple[int, int], np.ndarray, np.ndarray, str]],
    sink: ObsSink,
    round_index: int,
) -> list[tuple[tuple[int, int], tuple[int, ...], int, int]]:
    """Run one round's bindings, emitting a ``schedule.binding`` span per
    binding with its ``lane`` (index within the round).

    Serially the span brackets the solve itself; with a pool the solves
    happen in workers, so spans are recorded as results are collected.
    """
    outcomes = []
    if pool is None:  # serial: span wraps the actual solve
        for lane, task in enumerate(tasks):
            with sink.span(
                "schedule.binding",
                edge=list(task[0]),
                lane=lane,
                round=round_index,
            ) as sp:
                outcome = _bind_worker(task)
                sp.set(proposals=outcome[2], rounds=outcome[3])
            outcomes.append(outcome)
            sink.incr("schedule.bindings")
    else:  # pool: post-hoc spans as results arrive
        for lane, outcome in enumerate(pool.map(_bind_worker, tasks)):
            with sink.span(
                "schedule.binding",
                edge=list(outcome[0]),
                lane=lane,
                round=round_index,
            ) as sp:
                sp.set(proposals=outcome[2], rounds=outcome[3])
            outcomes.append(outcome)
            sink.incr("schedule.bindings")
    return outcomes


@dataclass(frozen=True)
class ParallelBindingReport:
    """Outcome and timing of a parallel iterative-binding run.

    Attributes
    ----------
    matching:
        The stable k-ary matching (identical to the serial Algorithm 1
        result for the same tree and engine).
    schedule:
        The round structure that was executed.
    backend:
        ``"process"``, ``"thread"`` or ``"serial"``.
    round_seconds:
        Wall-clock duration of each round.
    total_seconds:
        End-to-end wall clock (excludes pool startup when a pre-warmed
        pool is reused).
    edge_results:
        Per-edge GS statistics keyed by (proposer, responder).
    """

    matching: KAryMatching
    schedule: Schedule
    backend: str
    max_workers: int
    round_seconds: tuple[float, ...]
    total_seconds: float
    edge_results: dict[tuple[int, int], GSResult]

    @property
    def total_proposals(self) -> int:
        return sum(r.proposals for r in self.edge_results.values())


def run_bindings_parallel(
    instance: KPartiteInstance,
    tree: BindingTree | None = None,
    *,
    schedule: Schedule | None = None,
    backend: str = "process",
    max_workers: int | None = None,
    engine: str = "textbook",
    pool: Executor | None = None,
    sink: "ObsSink | None" = None,
    timer: Callable[[], float] = time.perf_counter,
) -> ParallelBindingReport:
    """Execute Algorithm 1 with each round's bindings run concurrently.

    Parameters
    ----------
    instance, tree:
        As in :func:`repro.core.iterative_binding`; ``tree`` defaults to
        the chain (the Δ=2 shape Corollary 2 favors).
    schedule:
        Round structure; defaults to :func:`greedy_tree_schedule` (Δ
        rounds).
    backend:
        ``"process"`` (default), ``"thread"``, or ``"serial"``.
    max_workers:
        Pool size; defaults to the paper's k-1 processors.
    pool:
        Optionally reuse an existing executor (avoids per-call process
        startup in benchmarks); ``backend`` is then ignored.
    sink:
        Optional :class:`~repro.obs.sink.ObsSink`.  Each round becomes a
        ``schedule.round`` span with one ``schedule.binding`` child per
        binding, tagged with its ``lane`` (index within the round) so
        the Chrome-trace export renders rounds as stacked lanes.  With a
        pool backend the bindings run in workers, so the per-binding
        spans are recorded post-hoc (their proposal/round attributes are
        exact; their durations reflect result collection, not solve
        time — use ``round_seconds`` for wall-clock).
    timer:
        Duration source for ``round_seconds``/``total_seconds``;
        injectable so replay harnesses and tests can use a
        deterministic clock (statan's clock-discipline rule bans raw
        ``time.perf_counter()`` calls outside the sanctioned modules).
    """
    if tree is None:
        tree = BindingTree.chain(instance.k)
    if schedule is None:
        schedule = greedy_tree_schedule(tree)
    if schedule.tree is not tree and schedule.tree != tree:
        raise InvalidBindingTreeError("schedule was built for a different tree")
    validate_schedule(schedule, copies=len(tree.edges) or 1)
    validate_backend(backend)
    if max_workers is None:
        max_workers = max(1, instance.k - 1)

    def tasks_for(edges: tuple[tuple[int, int], ...]):
        out = []
        for edge in edges:
            view = instance.bipartite_view(*edge)
            out.append(
                (edge, np.ascontiguousarray(view.proposer_prefs),
                 np.ascontiguousarray(view.responder_prefs), engine)
            )
        return out

    edge_results: dict[tuple[int, int], GSResult] = {}
    pairs: list[tuple[Member, Member]] = []
    round_seconds: list[float] = []

    owned_pool: Executor | None = None
    try:
        if pool is None and backend == "process":
            pool = owned_pool = ProcessPoolExecutor(max_workers=max_workers)
        elif pool is None and backend == "thread":
            pool = owned_pool = ThreadPoolExecutor(max_workers=max_workers)
        start_all = timer()
        for round_index, edges in enumerate(schedule.rounds):
            start = timer()
            if sink is None:
                if pool is None:  # serial
                    outcomes = [_bind_worker(t) for t in tasks_for(edges)]
                else:
                    outcomes = list(pool.map(_bind_worker, tasks_for(edges)))
            else:
                with sink.span(
                    "schedule.round", round=round_index, bindings=len(edges)
                ):
                    outcomes = _run_round_instrumented(
                        pool, tasks_for(edges), sink, round_index
                    )
                sink.incr("schedule.rounds")
            round_seconds.append(timer() - start)
            for edge, matching, proposals, rounds in outcomes:
                edge_results[edge] = GSResult(
                    matching=tuple(matching),
                    proposals=proposals,
                    rounds=rounds,
                    engine=engine,
                )
                pg, rg = edge
                pairs.extend(
                    (Member(pg, i), Member(rg, j)) for i, j in enumerate(matching)
                )
        total = timer() - start_all
        if sink is not None:
            sink.incr("schedule.runs")
            sink.incr(
                "schedule.proposals", sum(r.proposals for r in edge_results.values())
            )
    finally:
        if owned_pool is not None:
            owned_pool.shutdown()
    matching = KAryMatching.from_pairs(instance, pairs)
    return ParallelBindingReport(
        matching=matching,
        schedule=schedule,
        backend=backend if pool is None or owned_pool is not None else "custom",
        max_workers=max_workers,
        round_seconds=tuple(round_seconds),
        total_seconds=total,
        edge_results=edge_results,
    )
