"""Binding schedules: grouping tree edges into conflict-free rounds.

Without data replication, a gender's data can serve **one** binding per
round, so a round is a *matching in the binding tree* (no two edges
sharing a gender).  The minimum number of rounds is the tree's
chromatic index, which for trees equals the maximum degree Δ — hence
Corollary 1's Δ·n² bound.  For a chain, Δ = 2 and the even-odd pairing
of Figure 4 realizes the optimum (Corollary 2).

:func:`greedy_tree_schedule` computes an optimal Δ-round schedule for
any tree by root-first edge coloring (each edge takes the smallest
color unused by the edges already colored at its two endpoints; on a
tree this never needs more than Δ colors).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.binding_tree import BindingTree
from repro.exceptions import ScheduleConflictError

__all__ = [
    "Schedule",
    "greedy_tree_schedule",
    "even_odd_chain_schedule",
    "sequential_schedule",
    "validate_schedule",
]


@dataclass(frozen=True)
class Schedule:
    """Bindings grouped into synchronous rounds.

    ``rounds[r]`` lists the (proposer, responder) edges executed
    concurrently in round r.
    """

    tree: BindingTree
    rounds: tuple[tuple[tuple[int, int], ...], ...]

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def max_parallelism(self) -> int:
        """Largest number of simultaneous bindings in any round."""
        return max((len(r) for r in self.rounds), default=0)

    def edge_count(self) -> int:
        return sum(len(r) for r in self.rounds)


def validate_schedule(schedule: Schedule, *, copies: int = 1) -> None:
    """Check the schedule covers each tree edge exactly once, and that no
    round uses any gender more than ``copies`` times.

    ``copies`` models data replication: with c copies of every gender's
    data, a gender can serve c bindings per round (Section IV.C's CREW
    emulation).  Raises :class:`ScheduleConflictError` on violation.
    """
    scheduled = [e for r in schedule.rounds for e in r]
    want = sorted(tuple(sorted(e)) for e in schedule.tree.edges)
    got = sorted(tuple(sorted(e)) for e in scheduled)
    if want != got:
        raise ScheduleConflictError(
            f"schedule covers edges {got}, tree has {want}"
        )
    for r, edges in enumerate(schedule.rounds):
        load: dict[int, int] = {}
        for a, b in edges:
            load[a] = load.get(a, 0) + 1
            load[b] = load.get(b, 0) + 1
        for g, uses in load.items():
            if uses > copies:
                raise ScheduleConflictError(
                    f"round {r} uses gender {g} in {uses} bindings but only "
                    f"{copies} data cop{'y' if copies == 1 else 'ies'} exist"
                )


def sequential_schedule(tree: BindingTree) -> Schedule:
    """One binding per round — the serial baseline (k-1 rounds)."""
    return Schedule(tree=tree, rounds=tuple((e,) for e in tree.edges))


def greedy_tree_schedule(tree: BindingTree) -> Schedule:
    """Optimal Δ-round schedule for any binding tree.

    Classic tree edge coloring: BFS from gender 0; each edge to a child
    receives the smallest color different from the parent edge's color
    and from colors already given to its siblings.  Uses exactly Δ
    colors, matching Corollary 1's bound.
    """
    color_of: dict[frozenset[int], int] = {}
    parent_color: dict[int, int] = {0: -1}
    order = [0]
    seen = {0}
    qi = 0
    while qi < len(order):
        g = order[qi]
        qi += 1
        next_color = 0
        for nb in tree.neighbors(g):
            if nb in seen:
                continue
            if next_color == parent_color[g]:
                next_color += 1
            color_of[frozenset((g, nb))] = next_color
            parent_color[nb] = next_color
            next_color += 1
            seen.add(nb)
            order.append(nb)
    n_colors = max(color_of.values()) + 1 if color_of else 0
    rounds: list[list[tuple[int, int]]] = [[] for _ in range(n_colors)]
    for edge in tree.edges:  # keep original orientation
        rounds[color_of[frozenset(edge)]].append(edge)
    schedule = Schedule(tree=tree, rounds=tuple(tuple(r) for r in rounds))
    validate_schedule(schedule)
    assert schedule.n_rounds == tree.max_degree, (
        f"greedy tree coloring used {schedule.n_rounds} rounds on a tree "
        f"with Δ={tree.max_degree}"
    )
    return schedule


def even_odd_chain_schedule(tree: BindingTree) -> Schedule:
    """Figure 4's two-round schedule for a chain binding tree.

    Round 1 binds each even-positioned gender with its left neighbor,
    round 2 with its right neighbor.  Requires the tree to be a path;
    raises :class:`ScheduleConflictError` otherwise.
    """
    if tree.max_degree > 2:
        raise ScheduleConflictError(
            f"even-odd scheduling needs a chain; tree has Δ={tree.max_degree}"
        )
    # recover the path order
    ends = [g for g in range(tree.k) if tree.degree(g) == 1]
    start = min(ends) if ends else 0
    path = [start]
    prev = -1
    while len(path) < tree.k:
        nxt = [nb for nb in tree.neighbors(path[-1]) if nb != prev]
        prev = path[-1]
        path.append(nxt[0])
    oriented = {frozenset(e): e for e in tree.edges}
    evens: list[tuple[int, int]] = []
    odds: list[tuple[int, int]] = []
    for pos in range(tree.k - 1):
        edge = oriented[frozenset((path[pos], path[pos + 1]))]
        (evens if pos % 2 == 0 else odds).append(edge)
    rounds = tuple(r for r in (tuple(evens), tuple(odds)) if r)
    schedule = Schedule(tree=tree, rounds=rounds)
    validate_schedule(schedule)
    return schedule
