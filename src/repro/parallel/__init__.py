"""Parallel binding (Section IV.C): schedules, PRAM model, real executor.

The paper's parallelism lives at the *binding-tree level*: the k-1
Gale-Shapley bindings are independent tasks whose only shared state is
each gender's (read-only) preference data.  Three layers reproduce the
section:

* :mod:`repro.parallel.schedule` — conflict-free rounds of bindings:
  greedy tree edge coloring achieves Δ(T) rounds (Corollary 1), the
  even-odd chain schedule achieves 2 (Corollary 2 / Figure 4);
* :mod:`repro.parallel.pram` — an EREW/CREW PRAM cost-model simulator
  that validates a schedule's access discipline and reports makespan in
  GS-iteration units (the substitute for the paper's idealized PRAM);
* :mod:`repro.parallel.replication` — the log₂Δ data-doubling schedule
  that lets EREW emulate CREW and finish all bindings in one round;
* :mod:`repro.parallel.executor` — a real ``ProcessPoolExecutor``
  runner for wall-clock speedups (process-based because CPython threads
  cannot speed up this CPU-bound workload).
"""

from repro.parallel.schedule import (
    Schedule,
    greedy_tree_schedule,
    even_odd_chain_schedule,
    sequential_schedule,
    validate_schedule,
)
from repro.parallel.pram import PRAMModel, PRAMReport, simulate_schedule, one_round_schedule
from repro.parallel.machine import (
    AccessModel,
    Op,
    PRAMMachine,
    broadcast_doubling_program,
    broadcast_naive_program,
    sum_reduction_program,
    binding_read_program,
)
from repro.parallel.replication import replication_rounds, replication_schedule
from repro.parallel.executor import (
    BACKENDS,
    ParallelBindingReport,
    run_bindings_parallel,
    validate_backend,
)

__all__ = [
    "Schedule",
    "greedy_tree_schedule",
    "even_odd_chain_schedule",
    "sequential_schedule",
    "validate_schedule",
    "PRAMModel",
    "PRAMReport",
    "simulate_schedule",
    "one_round_schedule",
    "AccessModel",
    "Op",
    "PRAMMachine",
    "broadcast_doubling_program",
    "broadcast_naive_program",
    "sum_reduction_program",
    "binding_read_program",
    "replication_rounds",
    "replication_schedule",
    "ParallelBindingReport",
    "run_bindings_parallel",
    "BACKENDS",
    "validate_backend",
]
