"""Data replication: EREW emulation of CREW (Section IV.C, last remark).

"With log Δ rounds of data replication ... EREW PRAM can emulate CREW
PRAM as each of Δ copies through Δ rounds of replication can be read
simultaneously."  Concretely: each round, every existing copy of a
gender's data is read once and written to one fresh copy, doubling the
copy count — an EREW-legal broadcast.  After ceil(log₂ Δ) rounds there
are ≥ Δ copies, so all bindings incident to any gender can proceed in
one round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, ScheduleConflictError

__all__ = ["replication_rounds", "ReplicationPlan", "replication_schedule"]


def replication_rounds(delta: int) -> int:
    """Number of doubling rounds needed to reach ``delta`` copies."""
    if delta < 1:
        raise ConfigurationError(f"delta must be >= 1, got {delta}")
    return math.ceil(math.log2(delta)) if delta > 1 else 0


@dataclass(frozen=True)
class ReplicationPlan:
    """An explicit EREW-legal doubling schedule.

    ``rounds[r]`` is a list of (source_copy, dest_copy) transfers; copy
    0 is the original.  Every source appears at most once per round
    (exclusive read) and every destination exactly once overall
    (exclusive write).
    """

    target_copies: int
    rounds: tuple[tuple[tuple[int, int], ...], ...]

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def copies_after(self, round_index: int) -> int:
        """Copies existing after the first ``round_index`` rounds."""
        count = 1
        for r in self.rounds[:round_index]:
            count += len(r)
        return count


def replication_schedule(delta: int) -> ReplicationPlan:
    """Build the doubling plan reaching at least ``delta`` copies.

    >>> plan = replication_schedule(4)
    >>> plan.n_rounds
    2
    >>> plan.rounds
    (((0, 1),), ((0, 2), (1, 3)))
    """
    n_rounds = replication_rounds(delta)
    rounds: list[tuple[tuple[int, int], ...]] = []
    have = 1
    for _ in range(n_rounds):
        grow = min(have, delta - have)
        transfers = tuple((src, have + src) for src in range(grow))
        # EREW check: each source read once, each destination fresh
        sources = [s for s, _ in transfers]
        if len(set(sources)) != len(sources):  # pragma: no cover - by construction
            raise ScheduleConflictError("replication round re-reads a copy")
        rounds.append(transfers)
        have += grow
    plan = ReplicationPlan(target_copies=have, rounds=tuple(rounds))
    assert plan.target_copies >= delta
    return plan
