"""PRAM cost-model simulator for binding schedules.

The paper analyzes Section IV.C on an idealized PRAM; no such machine
exists, so we reproduce the *quantities* of Corollaries 1 and 2 with an
explicit cost model:

* a binding GS(i, j) is a task that **reads** the preference data of
  genders i and j and costs (by default) n² iteration units — the
  worst-case proposal count;
* under **EREW**, each gender's data block (or each of its ``copies``
  replicas) can be read by at most one binding per round — violating
  schedules raise :class:`ScheduleConflictError`;
* under **CREW**, concurrent reads are free, so any set of bindings may
  share a round (each binding writes only its private pair list);
* at most ``processors`` tasks run simultaneously; an over-full round
  is list-scheduled greedily onto the processors.

The report's ``makespan`` is the end-to-end iteration count, directly
comparable to Corollary 1's Δ·n² and Theorem 3's (k-1)·n².
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.parallel.schedule import Schedule, validate_schedule

__all__ = ["PRAMModel", "PRAMReport", "simulate_schedule", "one_round_schedule"]

EdgeCost = Callable[[tuple[int, int]], float]


class PRAMModel(enum.Enum):
    """Memory access discipline of the simulated PRAM."""

    EREW = "EREW"  # exclusive read, exclusive write
    CREW = "CREW"  # concurrent read, exclusive write


@dataclass(frozen=True)
class PRAMReport:
    """Simulation outcome.

    Attributes
    ----------
    model, processors, copies:
        Simulation parameters.
    n_rounds:
        Schedule rounds executed.
    round_makespans:
        Iteration units consumed by each round (max over its
        processors' loads).
    makespan:
        Total iteration units end to end (sum of round makespans).
    total_work:
        Sum of all task costs (what one processor would need).
    """

    model: PRAMModel
    processors: int
    copies: int
    n_rounds: int
    round_makespans: tuple[float, ...]
    makespan: float
    total_work: float

    @property
    def speedup(self) -> float:
        """Ideal-model speedup over sequential execution."""
        return self.total_work / self.makespan if self.makespan else 1.0


def one_round_schedule(tree) -> Schedule:
    """All k-1 bindings in a single round (valid under CREW, or under
    EREW with ≥ Δ data copies per gender)."""
    return Schedule(tree=tree, rounds=(tuple(tree.edges),))


def _resolve_cost(
    cost: float | Mapping[tuple[int, int], float] | EdgeCost, edge: tuple[int, int]
) -> float:
    if callable(cost):
        return float(cost(edge))
    if isinstance(cost, Mapping):
        return float(cost[edge])
    return float(cost)


def simulate_schedule(
    schedule: Schedule,
    *,
    model: PRAMModel | str = PRAMModel.EREW,
    processors: int | None = None,
    copies: int = 1,
    n: int | None = None,
    cost: float | Mapping[tuple[int, int], float] | EdgeCost | None = None,
) -> PRAMReport:
    """Simulate a binding schedule on the PRAM cost model.

    Parameters
    ----------
    schedule:
        The rounds of bindings to execute.
    model:
        ``EREW`` (validate exclusive access per copy) or ``CREW``.
    processors:
        Available processors; defaults to k-1 (the paper's setting).
    copies:
        Data replicas per gender (EREW only; see
        :mod:`repro.parallel.replication`).
    n:
        Members per gender; used for the default n² cost.
    cost:
        Per-edge cost override: scalar, mapping, or callable.  Pass the
        *measured* proposal counts of a real run to get measured
        makespans instead of worst-case ones.

    Raises
    ------
    ScheduleConflictError:
        If an EREW round over-subscribes a gender's data copies.
    """
    model = PRAMModel(model) if not isinstance(model, PRAMModel) else model
    k = schedule.tree.k
    if processors is None:
        processors = k - 1
    if processors < 1:
        raise ConfigurationError(f"processors must be >= 1, got {processors}")
    if copies < 1:
        raise ConfigurationError(f"copies must be >= 1, got {copies}")
    if cost is None:
        if n is None:
            raise ConfigurationError("provide n for the default n² cost, or an explicit cost")
        cost = float(n * n)
    if model is PRAMModel.EREW:
        validate_schedule(schedule, copies=copies)
    else:
        validate_schedule(schedule, copies=len(schedule.tree.edges) or 1)

    round_makespans: list[float] = []
    total_work = 0.0
    for edges in schedule.rounds:
        costs = sorted((_resolve_cost(cost, e) for e in edges), reverse=True)
        total_work += sum(costs)
        # greedy list scheduling onto `processors` identical machines
        loads = [0.0] * min(processors, max(len(costs), 1))
        for c in costs:
            idx = loads.index(min(loads))
            loads[idx] += c
        round_makespans.append(max(loads) if costs else 0.0)
    return PRAMReport(
        model=model,
        processors=processors,
        copies=copies,
        n_rounds=len(schedule.rounds),
        round_makespans=tuple(round_makespans),
        makespan=sum(round_makespans),
        total_work=total_work,
    )
