"""Reduction: k-partite binary matching -> stable roommates.

Binary matching in a k-partite graph is "a special case of the stable
roommates problem with incomplete preference lists" (Section III.B):
flatten all k·n members into one population; each member's roommates
list is its *global* preference order over all other-gender members
(own-gender members are omitted — that is the incompleteness).

Per-gender lists alone only define a partial order (footnote 4), so a
**linearization** turns them into the required total order:

``"global"``
    Use the explicit global order stored on the instance (error if
    absent) — the paper's Section III examples supply one directly.
``"round_robin"``
    Interleave per-gender lists rank-by-rank: every first choice
    precedes every second choice.
``"priority"``
    Concatenate per-gender lists in decreasing gender priority: any
    member of a higher-priority gender beats all of a lower one.
``"auto"``
    ``"global"`` when the instance has one, else ``"round_robin"``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import InvalidInstanceError
from repro.model.instance import KPartiteInstance
from repro.model.members import Member
from repro.roommates.instance import RoommatesInstance
from repro.utils.ordering import concatenate_by_priority, round_robin_merge

__all__ = [
    "member_id",
    "id_to_member",
    "linearize_member",
    "linearize_instance",
    "to_roommates",
    "LINEARIZATIONS",
]

LINEARIZATIONS = ("auto", "global", "round_robin", "priority")


def member_id(member: Member, n: int) -> int:
    """Flatten a member to its roommates participant id: gender·n + index."""
    return member.gender * n + member.index


def id_to_member(pid: int, n: int) -> Member:
    """Inverse of :func:`member_id`."""
    return Member(pid // n, pid % n)


def linearize_member(
    instance: KPartiteInstance,
    member: Member,
    linearization: str = "auto",
    priorities: Sequence[int] | None = None,
) -> list[Member]:
    """Produce ``member``'s single global order over other-gender members."""
    if linearization not in LINEARIZATIONS:
        raise InvalidInstanceError(
            f"unknown linearization {linearization!r}; choose from {LINEARIZATIONS}"
        )
    if linearization == "auto":
        linearization = "global" if instance.has_global_order else "round_robin"
    if linearization == "global":
        return instance.global_order(member)
    other_genders = [h for h in range(instance.k) if h != member.gender]
    lists = [instance.preference_list(member, h) for h in other_genders]
    if linearization == "round_robin":
        return round_robin_merge(lists)
    # priority
    if priorities is None:
        priorities = list(range(instance.k))
    if len(priorities) != instance.k:
        raise InvalidInstanceError(
            f"priorities must have length k={instance.k}, got {len(priorities)}"
        )
    return concatenate_by_priority(lists, [priorities[h] for h in other_genders])


def linearize_instance(
    instance: KPartiteInstance,
    linearization: str = "auto",
    priorities: Sequence[int] | None = None,
) -> dict[Member, list[Member]]:
    """Global order for every member of the instance."""
    return {
        m: linearize_member(instance, m, linearization, priorities)
        for m in instance.members()
    }


def to_roommates(
    instance: KPartiteInstance,
    linearization: str = "auto",
    priorities: Sequence[int] | None = None,
) -> RoommatesInstance:
    """Reduce the k-partite binary matching problem to stable roommates.

    Participant ids follow :func:`member_id`; labels use the instance's
    member names so solver diagnostics stay readable.
    """
    n = instance.n
    orders = linearize_instance(instance, linearization, priorities)
    prefs = [[0]] * (instance.k * n)
    labels = [""] * (instance.k * n)
    for m, order in orders.items():
        prefs[member_id(m, n)] = [member_id(x, n) for x in order]
        labels[member_id(m, n)] = instance.name(m)
    return RoommatesInstance(prefs, labels=labels, symmetrize=False)
