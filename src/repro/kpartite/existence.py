"""Existence detection and solving for k-partite binary matching.

:func:`solve_binary` is the Section III.B procedure end to end:
linearize, reduce to roommates, run Irving.  Stability of the result is
judged against the *same* global orders used for the reduction — a
blocking pair is two members of different genders who each prefer the
other (under their global order) to their current partner, whatever
gender that partner has.

:func:`exhaustive_stable_binary_exists` cross-checks Irving's verdict by
enumerating every perfect binary matching (tiny instances only); the
Theorem 1 benchmark uses it to confirm that "no stable matching" really
means none, not just that the algorithm missed one.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import InvalidMatchingError, NoStableMatchingError
from repro.kpartite.reduction import (
    id_to_member,
    linearize_instance,
    to_roommates,
)
from repro.model.instance import KPartiteInstance
from repro.model.members import Member
from repro.obs.sink import ObsSink
from repro.roommates.irving import RoommatesResult, solve_roommates
from repro.roommates.policies import PivotPolicy

__all__ = [
    "BinaryMatchingResult",
    "solve_binary",
    "has_stable_binary",
    "binary_blocking_pairs",
    "is_stable_binary",
    "exhaustive_stable_binary_exists",
]


@dataclass(frozen=True)
class BinaryMatchingResult:
    """A stable binary matching of a k-partite instance.

    Attributes
    ----------
    pairs:
        The matched pairs as (member, member) tuples, sorted.
    roommates:
        The underlying Irving run (proposal counts, rotations, tables).
    linearization:
        Which global-order strategy produced the roommates lists.
    """

    pairs: tuple[tuple[Member, Member], ...]
    roommates: RoommatesResult
    linearization: str

    def partner(self, member: Member) -> Member:
        """The member matched with ``member``."""
        for a, b in self.pairs:
            if a == member:
                return b
            if b == member:
                return a
        raise InvalidMatchingError(f"{member!r} not in matching")

    def as_dict(self) -> dict[Member, Member]:
        """Symmetric partner map."""
        out: dict[Member, Member] = {}
        for a, b in self.pairs:
            out[a] = b
            out[b] = a
        return out


def solve_binary(
    instance: KPartiteInstance,
    *,
    linearization: str = "auto",
    priorities: Sequence[int] | None = None,
    pivot_policy: str | PivotPolicy = "min",
    sink: "ObsSink | None" = None,
) -> BinaryMatchingResult:
    """Find a stable binary matching, or raise
    :class:`~repro.exceptions.NoStableMatchingError`.

    The witness attached to the error is the :class:`Member` whose
    reduced list emptied, mirroring the paper's right-hand-side III.B
    walkthrough where u's list empties.  ``sink`` is forwarded to the
    Irving solver, whose ``irving.*`` spans and counters cover the run.
    """
    rm = to_roommates(instance, linearization, priorities)
    try:
        result = solve_roommates(rm, pivot_policy=pivot_policy, sink=sink)
    except NoStableMatchingError as exc:
        if isinstance(exc.witness, int):
            member = id_to_member(exc.witness, instance.n)
            raise NoStableMatchingError(
                f"no stable binary matching: reduced list of "
                f"{instance.name(member)} emptied",
                witness=member,
            ) from exc
        raise
    pairs = sorted(
        {
            tuple(sorted((id_to_member(p, instance.n), id_to_member(q, instance.n))))
            for p, q in result.matching.items()
        }
    )
    return BinaryMatchingResult(
        pairs=tuple(pairs), roommates=result, linearization=linearization
    )


def has_stable_binary(
    instance: KPartiteInstance,
    *,
    linearization: str = "auto",
    priorities: Sequence[int] | None = None,
) -> bool:
    """True iff a stable binary matching exists (under the linearization)."""
    try:
        solve_binary(instance, linearization=linearization, priorities=priorities)
    except NoStableMatchingError:
        return False
    return True


def _partner_map(
    instance: KPartiteInstance, pairs: Sequence[tuple[Member, Member]]
) -> dict[Member, Member]:
    out: dict[Member, Member] = {}
    for a, b in pairs:
        if a.gender == b.gender:
            raise InvalidMatchingError(f"pair ({a}, {b}) is within one gender")
        for x, y in ((a, b), (b, a)):
            if x in out:
                raise InvalidMatchingError(f"{x} appears in two pairs")
            out[x] = y
    missing = [m for m in instance.members() if m not in out]
    if missing:
        raise InvalidMatchingError(f"matching leaves members unmatched: {missing}")
    return out


def binary_blocking_pairs(
    instance: KPartiteInstance,
    pairs: Sequence[tuple[Member, Member]],
    *,
    linearization: str = "auto",
    priorities: Sequence[int] | None = None,
) -> list[tuple[Member, Member]]:
    """All blocking pairs of a perfect binary matching.

    A pair (x, y), x and y of different genders and not matched to each
    other, blocks iff x globally prefers y to its partner and vice
    versa.  Global comparison uses the same linearization as solving.
    """
    partner = _partner_map(instance, pairs)
    orders = linearize_instance(instance, linearization, priorities)
    gpos = {
        m: {other: r for r, other in enumerate(order)} for m, order in orders.items()
    }
    members = list(instance.members())
    out: list[tuple[Member, Member]] = []
    for i, x in enumerate(members):
        for y in members[i + 1 :]:
            if y.gender == x.gender or partner[x] == y:
                continue
            if (
                gpos[x][y] < gpos[x][partner[x]]
                and gpos[y][x] < gpos[y][partner[y]]
            ):
                out.append((x, y))
    return out


def is_stable_binary(
    instance: KPartiteInstance,
    pairs: Sequence[tuple[Member, Member]],
    *,
    linearization: str = "auto",
    priorities: Sequence[int] | None = None,
) -> bool:
    """True iff the binary matching has no blocking pair."""
    return not binary_blocking_pairs(
        instance, pairs, linearization=linearization, priorities=priorities
    )


def exhaustive_stable_binary_exists(
    instance: KPartiteInstance,
    *,
    linearization: str = "auto",
    priorities: Sequence[int] | None = None,
) -> bool:
    """Ground-truth existence check by brute-force enumeration.

    Enumerates every perfect binary matching of the complete k-partite
    graph and tests stability.  Exponential — use only for k·n ≲ 12
    (the Theorem 1 cross-check sizes).
    """
    from repro.analysis.counting import enumerate_perfect_binary_matchings

    for pairing in enumerate_perfect_binary_matchings(instance.k, instance.n):
        if is_stable_binary(
            instance, pairing, linearization=linearization, priorities=priorities
        ):
            return True
    return False
