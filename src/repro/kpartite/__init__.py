"""Binary (pairwise) stable matching in k-partite graphs — Section III.

The pipeline: a :class:`repro.model.KPartiteInstance` is linearized
(each member's per-gender lists become one global order, footnote 4),
reduced to a stable-roommates instance with incomplete lists (same-
gender members are simply unacceptable), and solved with Irving's
algorithm.  Theorem 1 says this *fails* for some preferences whenever
k > 2; the solver reports that outcome precisely via
:class:`~repro.exceptions.NoStableMatchingError`.

The same machinery applied to k = 2 gives the paper's fair alternative
to Gale-Shapley: both sides propose, and phase-2 loop breaking can
alternate between man-oriented and woman-oriented for procedural
fairness (:func:`solve_smp_fair`).
"""

from repro.kpartite.reduction import (
    member_id,
    id_to_member,
    linearize_member,
    linearize_instance,
    to_roommates,
    LINEARIZATIONS,
)
from repro.kpartite.existence import (
    BinaryMatchingResult,
    solve_binary,
    has_stable_binary,
    binary_blocking_pairs,
    is_stable_binary,
    exhaustive_stable_binary_exists,
)
from repro.kpartite.fairness import solve_smp_fair, SMPFairResult
from repro.kpartite.almost_stable import (
    AlmostStableResult,
    min_blocking_matching_exact,
    min_blocking_matching_local,
)
from repro.kpartite.examples import self_matching_pariah_instance

__all__ = [
    "member_id",
    "id_to_member",
    "linearize_member",
    "linearize_instance",
    "to_roommates",
    "LINEARIZATIONS",
    "BinaryMatchingResult",
    "solve_binary",
    "has_stable_binary",
    "binary_blocking_pairs",
    "is_stable_binary",
    "exhaustive_stable_binary_exists",
    "solve_smp_fair",
    "SMPFairResult",
    "AlmostStableResult",
    "min_blocking_matching_exact",
    "min_blocking_matching_local",
    "self_matching_pariah_instance",
]
