"""Fair SMP solving via the roommates machinery (Section III.B, end).

Man-proposing Gale-Shapley is man-optimal; the paper's remedy lets
"both men and women propose at the same time" — i.e. solve the SMP as a
stable roommates instance — and then breaks phase-2 loops alternately
on the men's and the women's side for *procedural fairness*.

:func:`solve_smp_fair` packages that: policy ``"man_optimal"`` /
``"woman_optimal"`` force one side's best stable matching, and
``"alternate"`` alternates loop-breaking sides (the paper's proposal).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bipartite.fairness import MatchingCosts, matching_costs
from repro.exceptions import ConfigurationError, InvalidInstanceError
from repro.kpartite.reduction import to_roommates
from repro.model.instance import KPartiteInstance
from repro.roommates.irving import RoommatesResult, solve_roommates
from repro.roommates.policies import (
    PivotPolicy,
    make_alternating_policy,
    make_side_policy,
)

__all__ = ["SMPFairResult", "solve_smp_fair"]

_POLICIES = ("man_optimal", "woman_optimal", "alternate")


@dataclass(frozen=True)
class SMPFairResult:
    """Outcome of the roommates-based SMP solver.

    Attributes
    ----------
    matching:
        ``matching[i]`` = index (within gender 1) of the partner of
        proposer i (gender 0) — same convention as
        :class:`repro.bipartite.GSResult`.
    costs:
        All fairness metrics of the produced matching.
    roommates:
        The underlying Irving run.
    policy:
        The loop-breaking policy used.
    """

    matching: tuple[int, ...]
    costs: MatchingCosts
    roommates: RoommatesResult
    policy: str


def solve_smp_fair(
    instance: KPartiteInstance,
    *,
    policy: str | PivotPolicy = "alternate",
) -> SMPFairResult:
    """Solve a k=2 instance through the roommates reduction.

    Notes
    -----
    A bipartite instance *always* has a stable matching (Gale-Shapley),
    so unlike the k > 2 case this never raises
    :class:`~repro.exceptions.NoStableMatchingError`.

    * ``"man_optimal"`` starts rotations among the women (demoting women
      first leaves men on their best stable partners);
    * ``"woman_optimal"`` starts rotations among the men;
    * ``"alternate"`` alternates starting sides, beginning with the men
      (so the first eliminated loop is man-oriented, favoring women —
      matching the paper's narration of Figure 2).
    """
    if instance.k != 2:
        raise InvalidInstanceError(
            f"solve_smp_fair expects a bipartite instance, got k={instance.k}"
        )
    n = instance.n
    men = range(0, n)
    women = range(n, 2 * n)
    if callable(policy):
        pivot: str | PivotPolicy = policy
        policy_name = getattr(policy, "__name__", "custom")
    elif policy == "man_optimal":
        pivot = make_side_policy(women)
        policy_name = policy
    elif policy == "woman_optimal":
        pivot = make_side_policy(men)
        policy_name = policy
    elif policy == "alternate":
        pivot = make_alternating_policy(men, women)
        policy_name = policy
    else:
        raise ConfigurationError(f"unknown policy {policy!r}; choose from {_POLICIES}")
    rm = to_roommates(instance)
    result = solve_roommates(rm, pivot_policy=pivot)
    matching = tuple(result.matching[i] - n for i in range(n))
    view = instance.bipartite_view(0, 1)
    costs = matching_costs(view.proposer_prefs, view.responder_prefs, matching)
    return SMPFairResult(
        matching=matching, costs=costs, roommates=result, policy=policy_name
    )
