"""Section III.A's self-matching extension, as a roommates instance.

The paper briefly allows some genders to self-match ("nodes in part U
can be paired with nodes in U itself") and shows the answer stays
negative: with W = {w, w'}, M = {m, m'}, U = {u, u'} where "w, w', m,
m', and u are ranked as the top by m, m', u, w, and w', respectively"
and u' is ranked last by everyone, u' being paired with *anyone* is
unstable.

Self-matching steps outside :class:`repro.model.KPartiteInstance` (whose
members never rank their own gender), so the example is expressed
directly at the roommates level where "gender" is only an acceptability
pattern.
"""

from __future__ import annotations

from repro.roommates.instance import RoommatesInstance

__all__ = ["self_matching_pariah_instance"]

#: Participant order of the instance below.
_LABELS = ("m", "m'", "w", "w'", "u", "u'")


def self_matching_pariah_instance() -> RoommatesInstance:
    """The Section III.A self-matching counterexample (6 participants).

    Ids: 0=m, 1=m', 2=w, 3=w', 4=u, 5=u'.  Gender U (ids 4, 5) may
    self-match, so u and u' rank each other too; M and W stay two-gender
    (no same-gender entries).  The required structure:

    * top choices form the 5-cycle m->w->m'->w'->u->m
      (top(m)=w, top(w)=m', top(m')=w', top(w')=u, top(u)=m);
    * u' (id 5) is ranked **last** by every participant;
    * remaining positions are filled in id order (arbitrary — the
      argument only uses the two rules above).

    Whoever is matched with u' has a partner (their top-ranker) who
    prefers them to its own match, and they prefer that top-ranker to
    u' — a blocking pair, so no stable matching exists regardless of
    whether the pairing uses self-matching.
    """
    tops = {0: 2, 2: 1, 1: 3, 3: 4, 4: 0}
    acceptable = {
        0: [2, 3, 4, 5],        # m  : W and U
        1: [2, 3, 4, 5],        # m' : W and U
        2: [0, 1, 4, 5],        # w  : M and U
        3: [0, 1, 4, 5],        # w' : M and U
        4: [0, 1, 2, 3, 5],     # u  : M, W and own gender
        5: [0, 1, 2, 3, 4],     # u' : M, W and own gender
    }
    prefs: list[list[int]] = []
    for p in range(6):
        others = list(acceptable[p])
        order: list[int] = []
        if p in tops:
            order.append(tops[p])
        for q in others:
            if q not in order and q != 5:
                order.append(q)
        if 5 in others:
            order.append(5)  # the pariah goes last
        prefs.append(order)
    return RoommatesInstance(prefs, labels=_LABELS, symmetrize=False)
