"""Almost-stable binary matchings: minimize blocking pairs when
stability is impossible.

Theorem 1 says a society with k > 2 genders may have *no* stable
pairwise matching — but people still pair up.  The standard relaxation
(Abraham, Biró & Manlove's "almost stable" matchings) asks for a
perfect matching with the **fewest blocking pairs**.  Finding it is
NP-hard in general; we provide:

* :func:`min_blocking_matching_exact` — exhaustive over all perfect
  binary matchings (tiny instances; uses the same enumeration as the
  Theorem 1 cross-checks);
* :func:`min_blocking_matching_local` — repeated-restart local search
  (pair-swap neighbourhood) for larger instances, with the measured
  blocking count reported honestly rather than claimed optimal.

Both score matchings with the same global-order semantics as
:func:`repro.kpartite.existence.binary_blocking_pairs`, so an output
with score 0 *is* a stable matching.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.counting import enumerate_perfect_binary_matchings
from repro.exceptions import InvalidInstanceError
from repro.kpartite.existence import binary_blocking_pairs
from repro.model.instance import KPartiteInstance
from repro.model.members import Member
from repro.utils.rng import as_rng

__all__ = [
    "AlmostStableResult",
    "min_blocking_matching_exact",
    "min_blocking_matching_local",
]


@dataclass(frozen=True)
class AlmostStableResult:
    """An (approximately) least-unstable perfect binary matching.

    Attributes
    ----------
    pairs:
        The matching.
    blocking_count:
        Its number of blocking pairs (0 ⇔ genuinely stable).
    exact:
        Whether the result is provably optimal (exhaustive mode) or a
        local-search incumbent.
    evaluated:
        How many candidate matchings were scored.
    """

    pairs: tuple[tuple[Member, Member], ...]
    blocking_count: int
    exact: bool
    evaluated: int


def _score(instance, pairs, linearization, priorities) -> int:
    return len(
        binary_blocking_pairs(
            instance, pairs, linearization=linearization, priorities=priorities
        )
    )


def min_blocking_matching_exact(
    instance: KPartiteInstance,
    *,
    linearization: str = "auto",
    priorities: Sequence[int] | None = None,
) -> AlmostStableResult:
    """Provably minimize blocking pairs by exhaustive enumeration.

    Exponential in k·n — the Theorem 1 experiment sizes (k·n ≤ 12) are
    the intended domain.
    """
    best: tuple[tuple[Member, Member], ...] | None = None
    best_score: int | None = None
    evaluated = 0
    for pairing in enumerate_perfect_binary_matchings(instance.k, instance.n):
        evaluated += 1
        score = _score(instance, pairing, linearization, priorities)
        if best_score is None or score < best_score:
            best, best_score = tuple(tuple(p) for p in pairing), score
            if best_score == 0:
                break
    if best is None:
        raise InvalidInstanceError(
            "no perfect binary matching exists (odd total membership?)"
        )
    return AlmostStableResult(
        pairs=best, blocking_count=int(best_score), exact=True, evaluated=evaluated
    )


def _random_perfect_matching(
    instance: KPartiteInstance, rng: np.random.Generator
) -> list[tuple[Member, Member]] | None:
    """Greedy randomized perfect binary matching (None on dead end)."""
    members = [Member(g, i) for g in range(instance.k) for i in range(instance.n)]
    rng.shuffle(members)  # type: ignore[arg-type]
    pairs: list[tuple[Member, Member]] = []
    free = list(members)
    while free:
        a = free.pop()
        choices = [i for i, b in enumerate(free) if b.gender != a.gender]
        if not choices:
            return None
        idx = choices[int(rng.integers(len(choices)))]
        pairs.append((a, free.pop(idx)))
    return pairs


def min_blocking_matching_local(
    instance: KPartiteInstance,
    *,
    linearization: str = "auto",
    priorities: Sequence[int] | None = None,
    restarts: int = 5,
    max_steps: int = 200,
    seed: int | None | np.random.Generator = None,
) -> AlmostStableResult:
    """Local search: 2-pair swap neighbourhood, first-improvement,
    random restarts.

    From each random perfect matching, repeatedly try swapping the
    partners of two pairs (both re-pairings of {a, b} x {c, d} that
    keep genders distinct) and accept the first strict improvement;
    stop at a local optimum or ``max_steps``.  Returns the best
    incumbent over all restarts — ``exact=False`` unless it happens to
    reach 0 blocking pairs (which *is* a certificate of stability).
    """
    if (instance.k * instance.n) % 2 != 0:
        raise InvalidInstanceError("odd total membership: no perfect matching")
    rng = as_rng(seed)
    best: tuple[tuple[Member, Member], ...] | None = None
    best_score: int | None = None
    evaluated = 0
    for _ in range(max(1, restarts)):
        pairs = None
        for _ in range(50):
            pairs = _random_perfect_matching(instance, rng)
            if pairs is not None:
                break
        if pairs is None:
            continue
        score = _score(instance, pairs, linearization, priorities)
        evaluated += 1
        for _ in range(max_steps):
            improved = False
            order = rng.permutation(len(pairs))
            for ii in range(len(pairs)):
                for jj in range(ii + 1, len(pairs)):
                    i, j = int(order[ii]), int(order[jj])
                    (a, b), (c, d) = pairs[i], pairs[j]
                    for new_i, new_j in (((a, d), (c, b)), ((a, c), (b, d))):
                        if (
                            new_i[0].gender == new_i[1].gender
                            or new_j[0].gender == new_j[1].gender
                        ):
                            continue
                        trial = list(pairs)
                        trial[i], trial[j] = new_i, new_j
                        trial_score = _score(
                            instance, trial, linearization, priorities
                        )
                        evaluated += 1
                        if trial_score < score:
                            pairs, score = trial, trial_score
                            improved = True
                            break
                    if improved:
                        break
                if improved:
                    break
            if not improved or score == 0:
                break
        if best_score is None or score < best_score:
            best = tuple(tuple(p) for p in pairs)
            best_score = score
        if best_score == 0:
            break
    assert best is not None and best_score is not None
    return AlmostStableResult(
        pairs=best,
        blocking_count=int(best_score),
        exact=best_score == 0,
        evaluated=evaluated,
    )
