"""Baselines: the NP-complete multi-dimensional SMP formulations.

The paper positions its k-ary model against the existing
three-dimensional extensions it cites — and the contrast *is* the
contribution: those formulations are NP-complete while per-gender
binary preferences keep everything polynomial.  To make the comparison
executable we implement both classic formulations as exact
(exponential-time) solvers:

* :mod:`repro.baselines.cyclic3dsm` — **cyclic preferences**
  (Ng & Hirschberg's variation; also Cui & Jia's networking model):
  gender A ranks B, B ranks C, C ranks A; a triple blocks when each
  member improves along the cycle;
* :mod:`repro.baselines.combination3dsm` — **combination preferences**
  (Ng & Hirschberg): each member ranks all n² pairs of the other two
  genders.

Benchmark E16 runs them against Algorithm 1 on the same instances.
"""

from repro.baselines.cyclic3dsm import (
    CyclicInstance,
    cyclic_blocking_triples,
    is_stable_cyclic,
    solve_cyclic_exhaustive,
    random_cyclic_instance,
    cyclic_from_kpartite,
)
from repro.baselines.combination3dsm import (
    CombinationInstance,
    combination_blocking_triples,
    is_stable_combination,
    solve_combination_exhaustive,
    random_combination_instance,
)

__all__ = [
    "CyclicInstance",
    "cyclic_blocking_triples",
    "is_stable_cyclic",
    "solve_cyclic_exhaustive",
    "random_cyclic_instance",
    "cyclic_from_kpartite",
    "CombinationInstance",
    "combination_blocking_triples",
    "is_stable_combination",
    "solve_combination_exhaustive",
    "random_combination_instance",
]
