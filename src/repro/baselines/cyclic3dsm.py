"""Cyclic three-dimensional stable matching (c3DSM).

Model: three genders A, B, C of n agents; A-agents rank only B-agents,
B-agents rank only C-agents, C-agents rank only A-agents ("the
preference rating is cyclic among genders").  A matching is n disjoint
triples (a, b, c).  A triple (a, b, c) **blocks** M iff

* a strictly prefers b to its current B-partner, and
* b strictly prefers c to its current C-partner, and
* c strictly prefers a to its current A-partner.

Deciding existence for variants of this model is NP-complete (Huang;
Ng & Hirschberg), which is exactly why the paper's per-gender binary
model matters.  The solver here is an exact exponential backtracking
search over (σ: A→B, τ: B→C) permutation pairs with incremental
pruning — fine for the n ≤ 6 scales of benchmark E16, hopeless beyond,
which is the point being demonstrated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    BudgetExhaustedError,
    InvalidInstanceError,
    InvalidMatchingError,
)
from repro.model.instance import KPartiteInstance
from repro.utils.ordering import rank_array
from repro.utils.rng import as_rng

__all__ = [
    "CyclicInstance",
    "cyclic_blocking_triples",
    "is_stable_cyclic",
    "solve_cyclic_exhaustive",
    "random_cyclic_instance",
    "cyclic_from_kpartite",
]


@dataclass(frozen=True)
class CyclicInstance:
    """A c3DSM instance.

    Attributes
    ----------
    a_over_b, b_over_c, c_over_a:
        ``(n, n)`` preference matrices, best first: row i of ``a_over_b``
        is A-agent i's ranking of B-agents, etc.
    """

    a_over_b: np.ndarray
    b_over_c: np.ndarray
    c_over_a: np.ndarray

    def __post_init__(self) -> None:
        for name in ("a_over_b", "b_over_c", "c_over_a"):
            arr = np.asarray(getattr(self, name), dtype=np.int64)
            object.__setattr__(self, name, arr)
            if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
                raise InvalidInstanceError(f"{name} must be square, got {arr.shape}")
            for row in arr:
                try:
                    rank_array(row.tolist())
                except ValueError as exc:
                    raise InvalidInstanceError(f"{name}: {exc}") from exc
        if not (self.a_over_b.shape == self.b_over_c.shape == self.c_over_a.shape):
            raise InvalidInstanceError("all three matrices must share one n")

    @property
    def n(self) -> int:
        return int(self.a_over_b.shape[0])

    def ranks(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Inverse-permutation rank matrices for the three relations."""
        return tuple(
            np.array([rank_array(row.tolist()) for row in mat])
            for mat in (self.a_over_b, self.b_over_c, self.c_over_a)
        )  # type: ignore[return-value]


def random_cyclic_instance(
    n: int, seed: int | None | np.random.Generator = None
) -> CyclicInstance:
    """Uniform random c3DSM instance."""
    rng = as_rng(seed)
    return CyclicInstance(
        a_over_b=np.array([rng.permutation(n) for _ in range(n)]),
        b_over_c=np.array([rng.permutation(n) for _ in range(n)]),
        c_over_a=np.array([rng.permutation(n) for _ in range(n)]),
    )


def cyclic_from_kpartite(instance: KPartiteInstance) -> CyclicInstance:
    """Project a k=3 per-gender instance onto the cyclic model.

    Keeps A's list over B, B's over C, C's over A and *discards* the
    other three lists — the information the cyclic formulation cannot
    express.  Used by E16 to run both models on "the same" workload.
    """
    if instance.k != 3:
        raise InvalidInstanceError(f"cyclic model needs k=3, got k={instance.k}")
    pref = instance.pref_array()
    return CyclicInstance(
        a_over_b=pref[0, :, 1, :].astype(np.int64),
        b_over_c=pref[1, :, 2, :].astype(np.int64),
        c_over_a=pref[2, :, 0, :].astype(np.int64),
    )


def _validate_matching(inst: CyclicInstance, sigma, tau) -> tuple[list[int], list[int]]:
    n = inst.n
    sigma = [int(x) for x in sigma]
    tau = [int(x) for x in tau]
    if sorted(sigma) != list(range(n)) or sorted(tau) != list(range(n)):
        raise InvalidMatchingError("sigma and tau must be permutations of range(n)")
    return sigma, tau


def cyclic_blocking_triples(
    inst: CyclicInstance, sigma, tau
) -> list[tuple[int, int, int]]:
    """All blocking triples of the matching (a_i, b_{sigma[i]},
    c_{tau[sigma[i]]}).

    ``sigma`` maps A-agents to B-partners; ``tau`` maps B-agents to
    C-partners (so the triples are determined).  O(n³).
    """
    sigma, tau = _validate_matching(inst, sigma, tau)
    ra, rb, rc = inst.ranks()
    n = inst.n
    # current partner ranks
    a_cur = [ra[i, sigma[i]] for i in range(n)]
    b_cur = [rb[j, tau[j]] for j in range(n)]
    inv_sigma = [0] * n
    for i, j in enumerate(sigma):
        inv_sigma[j] = i
    inv_tau = [0] * n
    for j, c in enumerate(tau):
        inv_tau[c] = j
    c_cur = [rc[c, inv_sigma[inv_tau[c]]] for c in range(n)]
    out = []
    for a in range(n):
        for b in range(n):
            if ra[a, b] >= a_cur[a]:
                continue
            for c in range(n):
                if rb[b, c] >= b_cur[b]:
                    continue
                if rc[c, a] < c_cur[c]:
                    out.append((a, b, c))
    return out


def is_stable_cyclic(inst: CyclicInstance, sigma, tau) -> bool:
    """True iff the matching has no cyclic blocking triple."""
    return not cyclic_blocking_triples(inst, sigma, tau)


def solve_cyclic_exhaustive(
    inst: CyclicInstance, *, max_nodes: int | None = None
) -> tuple[list[int], list[int]] | None:
    """Exact search for a stable c3DSM matching; None if none exists.

    Iterates candidate (sigma, tau) permutation pairs — (n!)² of them —
    with an early blocking check after sigma is fixed.  ``max_nodes``
    caps the number of full candidates examined (raises RuntimeError on
    exhaustion) so benchmarks can bound runtime explicitly.
    """
    n = inst.n
    examined = 0
    for sigma in itertools.permutations(range(n)):
        for tau in itertools.permutations(range(n)):
            examined += 1
            if max_nodes is not None and examined > max_nodes:
                raise BudgetExhaustedError(
                    f"exhausted node budget ({max_nodes}) without a verdict"
                )
            if is_stable_cyclic(inst, sigma, tau):
                return list(sigma), list(tau)
    return None
