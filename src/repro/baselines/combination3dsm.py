"""Combination-preference three-dimensional stable matching.

Ng & Hirschberg's first model, quoted by the paper: "each member of a
gender has a preference order for all combination of the other two
genders, which have n² combinations."  A triple (a, b, c) blocks a
matching iff **each** of a, b, c strictly prefers its pair of new
partners (as a combination) to its current pair.

Deciding existence is NP-complete; the exact solver below is the
obvious (n!)²-candidate search.  The model's *input* is already
quadratic per member (n² ranked pairs), which benchmark E16 contrasts
with the paper's 2n-entry per-member lists.

Pair encoding: the combination (x, y) — partner x from the nearer
gender, y from the farther — is index ``x * n + y``:

* A ranks (b, c) pairs as ``b * n + c``;
* B ranks (a, c) pairs as ``a * n + c``;
* C ranks (a, b) pairs as ``a * n + b``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    BudgetExhaustedError,
    InvalidInstanceError,
    InvalidMatchingError,
)
from repro.utils.ordering import rank_array
from repro.utils.rng import as_rng

__all__ = [
    "CombinationInstance",
    "combination_blocking_triples",
    "is_stable_combination",
    "solve_combination_exhaustive",
    "random_combination_instance",
]


@dataclass(frozen=True)
class CombinationInstance:
    """A combination-preference 3DSM instance.

    Attributes
    ----------
    a_prefs, b_prefs, c_prefs:
        ``(n, n²)`` matrices; row i is agent i's strict order over the
        n² encoded pairs (see module docstring), best first.
    """

    a_prefs: np.ndarray
    b_prefs: np.ndarray
    c_prefs: np.ndarray

    def __post_init__(self) -> None:
        shapes = set()
        for name in ("a_prefs", "b_prefs", "c_prefs"):
            arr = np.asarray(getattr(self, name), dtype=np.int64)
            object.__setattr__(self, name, arr)
            if arr.ndim != 2 or arr.shape[1] != arr.shape[0] ** 2:
                raise InvalidInstanceError(
                    f"{name} must have shape (n, n^2), got {arr.shape}"
                )
            for row in arr:
                try:
                    rank_array(row.tolist())
                except ValueError as exc:
                    raise InvalidInstanceError(f"{name}: {exc}") from exc
            shapes.add(arr.shape)
        if len(shapes) != 1:
            raise InvalidInstanceError("all three matrices must share one n")

    @property
    def n(self) -> int:
        return int(self.a_prefs.shape[0])

    def ranks(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rank matrices (agent, encoded pair) for the three genders."""
        return tuple(
            np.array([rank_array(row.tolist()) for row in mat])
            for mat in (self.a_prefs, self.b_prefs, self.c_prefs)
        )  # type: ignore[return-value]


def random_combination_instance(
    n: int, seed: int | None | np.random.Generator = None
) -> CombinationInstance:
    """Uniform random combination-preference instance."""
    rng = as_rng(seed)
    return CombinationInstance(
        a_prefs=np.array([rng.permutation(n * n) for _ in range(n)]),
        b_prefs=np.array([rng.permutation(n * n) for _ in range(n)]),
        c_prefs=np.array([rng.permutation(n * n) for _ in range(n)]),
    )


def _triples(sigma: list[int], tau: list[int]) -> list[tuple[int, int, int]]:
    """Matching triples (a, b, c) from sigma: A->B and tau: B->C."""
    return [(a, sigma[a], tau[sigma[a]]) for a in range(len(sigma))]


def combination_blocking_triples(
    inst: CombinationInstance, sigma, tau
) -> list[tuple[int, int, int]]:
    """All blocking triples under combination preferences.  O(n³)."""
    n = inst.n
    sigma = [int(x) for x in sigma]
    tau = [int(x) for x in tau]
    if sorted(sigma) != list(range(n)) or sorted(tau) != list(range(n)):
        raise InvalidMatchingError("sigma and tau must be permutations of range(n)")
    ra, rb, rc = inst.ranks()
    cur_pair_a = [0] * n
    cur_pair_b = [0] * n
    cur_pair_c = [0] * n
    for a, b, c in _triples(sigma, tau):
        cur_pair_a[a] = ra[a, b * n + c]
        cur_pair_b[b] = rb[b, a * n + c]
        cur_pair_c[c] = rc[c, a * n + b]
    current = set(_triples(sigma, tau))
    out = []
    for a in range(n):
        for b in range(n):
            for c in range(n):
                if (a, b, c) in current:
                    continue
                if (
                    ra[a, b * n + c] < cur_pair_a[a]
                    and rb[b, a * n + c] < cur_pair_b[b]
                    and rc[c, a * n + b] < cur_pair_c[c]
                ):
                    out.append((a, b, c))
    return out


def is_stable_combination(inst: CombinationInstance, sigma, tau) -> bool:
    """True iff no combination blocking triple exists."""
    return not combination_blocking_triples(inst, sigma, tau)


def solve_combination_exhaustive(
    inst: CombinationInstance, *, max_nodes: int | None = None
) -> tuple[list[int], list[int]] | None:
    """Exact (n!)²-candidate search; None if no stable matching exists.

    Unlike the paper's k-ary model (Theorem 2: always solvable), the
    combination model admits instances with **no** stable matching at
    all — our E16 benchmark finds such instances among random n = 2
    draws — which together with NP-completeness of the decision problem
    is exactly the contrast the paper draws.
    """
    n = inst.n
    examined = 0
    for sigma in itertools.permutations(range(n)):
        for tau in itertools.permutations(range(n)):
            examined += 1
            if max_nodes is not None and examined > max_nodes:
                raise BudgetExhaustedError(
                    f"exhausted node budget ({max_nodes}) without a verdict"
                )
            if is_stable_combination(inst, sigma, tau):
                return list(sigma), list(tau)
    return None
