"""Clock abstraction: real monotonic time or deterministic virtual time.

Everything time-dependent in :mod:`repro.service` — deadlines, token
buckets, queue-wait accounting, modelled service cost — reads the clock
through this two-method interface (``now`` / ``sleep``), so the same
pipeline runs against wall-clock in production mode and against a
:class:`VirtualClock` in tests and the load harness.

The virtual clock is the reproducibility workhorse: time advances only
when every coroutine is blocked, and then jumps straight to the next
scheduled wakeup.  A 10-minute soak therefore executes in milliseconds
and — because the asyncio event loop is single-threaded and all wakeups
fire in deterministic (time, sequence) order — two runs of a seeded
workload produce byte-identical outcome maps, which is the contract
``make service-smoke`` checks.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from typing import Awaitable, TypeVar

from repro.exceptions import SimulationError

__all__ = ["Clock", "RealClock", "VirtualClock", "run_virtual"]

T = TypeVar("T")


class Clock:
    """Protocol and trivial base for service clocks."""

    def now(self) -> float:
        """Current time in seconds (monotonic; origin is clock-defined)."""
        raise NotImplementedError

    async def sleep(self, seconds: float) -> None:
        """Suspend the calling coroutine for ``seconds``."""
        raise NotImplementedError

    async def sleep_until(self, when_s: float) -> None:
        """Suspend until the clock reads ``when_s`` (past targets yield once).

        The base implementation sleeps the remaining delta; the virtual
        clock overrides it to park on the *absolute* target, which is
        what lets a replayed schedule hit recorded timestamps exactly
        (no float drift from re-accumulating gaps).
        """
        await self.sleep(when_s - self.now())


class RealClock(Clock):
    """Wall-clock implementation: ``time.monotonic`` + ``asyncio.sleep``."""

    def now(self) -> float:
        """Monotonic wall-clock seconds."""
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        """Real suspension via :func:`asyncio.sleep`."""
        await asyncio.sleep(max(0.0, seconds))


class VirtualClock(Clock):
    """Deterministic simulated time for single-threaded asyncio code.

    ``sleep`` parks the caller on a (due-time, sequence) heap;
    :func:`run_virtual` advances ``now`` to the earliest due entry
    whenever the event loop has nothing runnable left.  Wakeups at the
    same instant fire in registration order, so scheduling is a pure
    function of the workload — no wall-clock leaks in.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._seq = itertools.count()
        self._sleepers: list[tuple[float, int, asyncio.Future[None]]] = []

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    async def sleep(self, seconds: float) -> None:
        """Park until virtual time has advanced by ``seconds``.

        Non-positive durations still yield once (one event-loop pass),
        mirroring ``asyncio.sleep(0)`` semantics.
        """
        if seconds <= 0:
            await asyncio.sleep(0)
            return
        await self._park(self._now + seconds)

    async def sleep_until(self, when_s: float) -> None:
        """Park on the absolute due time ``when_s`` (exact, no delta math).

        ``_advance`` sets ``now`` to the due value itself, so a waiter
        parked on a recorded timestamp wakes with ``now()`` equal to
        that exact float — the replay determinism contract.
        """
        if when_s <= self._now:
            await asyncio.sleep(0)
            return
        await self._park(float(when_s))

    async def _park(self, due: float) -> None:
        future: asyncio.Future[None] = asyncio.get_running_loop().create_future()
        heapq.heappush(self._sleepers, (due, next(self._seq), future))
        await future

    def pending(self) -> int:
        """Number of coroutines currently parked on this clock."""
        return sum(1 for _, _, fut in self._sleepers if not fut.done())

    async def _settle(self) -> None:
        """Yield until the event loop has no runnable callbacks left.

        Uses CPython's ``loop._ready`` queue when available (exact), and
        falls back to a generous fixed number of yields elsewhere.  The
        hard bound catches livelocks (a task spinning without sleeping).
        """
        loop = asyncio.get_running_loop()
        ready = getattr(loop, "_ready", None)
        for spin in range(100_000):
            await asyncio.sleep(0)
            if ready is not None:
                if not ready:
                    return
            elif spin >= 64:
                return
        raise SimulationError(
            "virtual clock could not settle the event loop: a task is "
            "busy-looping without awaiting the clock"
        )

    def _advance(self) -> None:
        """Jump to the next due wakeup and fire everything due then."""
        while self._sleepers and self._sleepers[0][2].done():
            heapq.heappop(self._sleepers)  # cancelled sleeper: discard
        if not self._sleepers:
            raise SimulationError("virtual clock has no pending sleepers to advance")
        due = self._sleepers[0][0]
        self._now = max(self._now, due)
        while self._sleepers and self._sleepers[0][0] <= self._now:
            _, _, future = heapq.heappop(self._sleepers)
            if not future.done():
                future.set_result(None)


async def run_virtual(clock: VirtualClock, main: "Awaitable[T]") -> T:
    """Drive ``main`` to completion under ``clock``.

    Alternates between letting every runnable coroutine run (settle) and
    advancing virtual time to the next scheduled wakeup.  Raises
    :class:`~repro.exceptions.SimulationError` when ``main`` is not done
    but nothing is sleeping — a deadlock that would hang a real service.
    """
    task = asyncio.ensure_future(main)
    try:
        while not task.done():
            await clock._settle()
            if task.done():
                break
            if clock.pending() == 0:
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
                raise SimulationError(
                    "virtual-clock deadlock: the workload is not done but no "
                    "coroutine is sleeping on the clock"
                )
            clock._advance()
        return task.result()
    finally:
        if not task.done():
            task.cancel()
