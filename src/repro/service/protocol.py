"""The JSONL wire protocol behind ``repro serve``.

One request per line, one response per line.  A request document::

    {"id": "r1", "solver": "kary", "priority": "normal",
     "client": "cli", "deadline_s": 5.0, "verify": true,
     "instance": { ... instance_to_dict schema ... }}

carries either a full serialized instance (``instance``) or, for
hand-written streams and tests, a generator shorthand::

    {"id": "r2", "generate": {"k": 3, "n": 4, "seed": 7}, "solver": "binary"}

(``seed`` is mandatory in the shorthand — an unseeded instance would
make the request non-reproducible).  Solver-shaping fields (``tree``,
``tree_seed``, ``gs_engine``, ``linearization``) pass through to
:class:`~repro.engine.jobs.SolveRequest`.

Malformed lines never crash the server: :func:`parse_service_request`
raises :class:`~repro.exceptions.InvalidServiceRequestError` whose
message names the offending request id (or the 1-based line number when
the id itself is unreadable), and :func:`serve_lines` turns that into
an ``"outcome": "invalid"`` response on the output stream.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Iterable

from repro.engine.jobs import SolveRequest
from repro.exceptions import InvalidServiceRequestError, ReproError
from repro.model.generators import random_instance
from repro.model.serialize import instance_from_dict, instance_to_dict
from repro.service.pipeline import ServiceRequest, ServiceResponse, SolveService

__all__ = [
    "parse_service_request",
    "request_line",
    "response_line",
    "invalid_line",
    "serve_lines",
    "serve_socket",
]


def _request_name(doc: Any, line_number: int) -> str:
    if isinstance(doc, dict) and isinstance(doc.get("id"), str) and doc["id"]:
        return doc["id"]
    return f"line-{line_number}"


def parse_service_request(line: str, *, line_number: int = 0) -> ServiceRequest:
    """Parse one JSONL request line into a :class:`ServiceRequest`.

    Raises :class:`~repro.exceptions.InvalidServiceRequestError` for
    anything malformed — bad JSON, a missing/empty ``id``, neither
    ``instance`` nor ``generate``, an unknown solver, a bad instance
    document.  The error message always names the request id when one
    is readable, else the 1-based ``line_number``.
    """
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise InvalidServiceRequestError(
            f"request line-{line_number}: not valid JSON: {exc}",
            request_id=f"line-{line_number}",
        ) from exc
    name = _request_name(doc, line_number)
    if not isinstance(doc, dict):
        raise InvalidServiceRequestError(
            f"request {name!r}: expected a JSON object, got {type(doc).__name__}",
            request_id=name,
        )
    if not isinstance(doc.get("id"), str) or not doc["id"]:
        raise InvalidServiceRequestError(
            f"request {name!r}: missing or empty 'id' field",
            request_id=name,
        )
    instance_doc = doc.get("instance")
    generate = doc.get("generate")
    if (instance_doc is None) == (generate is None):
        raise InvalidServiceRequestError(
            f"request {name!r}: exactly one of 'instance' or 'generate' "
            "is required",
            request_id=name,
        )
    try:
        if instance_doc is not None:
            instance = instance_from_dict(dict(instance_doc))
        else:
            spec = dict(generate)
            if "seed" not in spec:
                raise InvalidServiceRequestError(
                    f"request {name!r}: 'generate' needs an explicit 'seed'",
                    request_id=name,
                )
            instance = random_instance(
                int(spec.get("k", 3)), int(spec.get("n", 4)), seed=int(spec["seed"])
            )
        solve = SolveRequest(
            instance=instance,
            solver=str(doc.get("solver", "kary")),
            tree=str(doc.get("tree", "chain")),
            tree_seed=(
                int(doc["tree_seed"]) if doc.get("tree_seed") is not None else None
            ),
            gs_engine=str(doc.get("gs_engine", "textbook")),
            linearization=str(doc.get("linearization", "auto")),
            verify=bool(doc.get("verify", False)),
            label=doc["id"],
        )
        return ServiceRequest(
            request_id=doc["id"],
            solve=solve,
            priority=str(doc.get("priority", "normal")),
            client=str(doc.get("client", "default")),
            deadline_s=(
                float(doc["deadline_s"]) if doc.get("deadline_s") is not None else None
            ),
        )
    except InvalidServiceRequestError:
        raise
    except (ReproError, TypeError, KeyError, ValueError) as exc:
        raise InvalidServiceRequestError(
            f"request {name!r}: {exc}", request_id=name
        ) from exc


def request_line(request: ServiceRequest) -> str:
    """Serialize a :class:`ServiceRequest` as one wire-protocol line.

    The inverse of :func:`parse_service_request` (modulo the
    ``generate`` shorthand, which always serializes as a full
    ``instance`` document): parsing the returned line reconstructs an
    equal request — same fingerprint, same serving metadata.  This is
    how the load harness turns its in-memory request stream into a
    capture the replayer can feed back verbatim.
    """
    solve = request.solve
    doc: dict[str, Any] = {
        "id": request.request_id,
        "solver": solve.solver,
        "tree": solve.tree,
        "gs_engine": solve.gs_engine,
        "linearization": solve.linearization,
        "verify": solve.verify,
        "priority": request.priority,
        "client": request.client,
        "instance": instance_to_dict(solve.instance),
    }
    if solve.tree_seed is not None:
        doc["tree_seed"] = solve.tree_seed
    if request.deadline_s is not None:
        doc["deadline_s"] = request.deadline_s
    return json.dumps(doc, sort_keys=True)


def response_line(response: ServiceResponse) -> str:
    """Serialize one response as a stable single JSON line."""
    return json.dumps(response.to_dict(), sort_keys=True)


def invalid_line(exc: InvalidServiceRequestError) -> str:
    """The ``"outcome": "invalid"`` response line for a parse failure."""
    return json.dumps(
        {
            "id": exc.request_id,
            "outcome": "invalid",
            "error": str(exc),
            "error_type": type(exc).__name__,
        },
        sort_keys=True,
    )


def _tap_response(tap: Any, seq: int, task: "asyncio.Task[ServiceResponse]") -> None:
    """Record a completed request's outcome on the capture tap."""
    if task.cancelled() or task.exception() is not None:
        return  # a dying stream has no terminal outcome to record
    response = task.result()
    tap.response(seq, response.request_id, response.outcome)


async def serve_lines(
    service: SolveService, lines: Iterable[str], *, tap: Any = None
) -> list[str]:
    """Serve a JSONL request stream; returns one response line per input.

    Requests are submitted concurrently (so priorities, deadlines, and
    backpressure genuinely interact) but responses are emitted in input
    order, which keeps the output diffable.  Blank lines are skipped;
    unparseable lines yield ``invalid`` responses without stopping the
    stream.

    ``tap`` is the wire-boundary capture hook (duck-typed to
    :class:`repro.obs.capture.CaptureWriter` so this layer never
    imports the replay stack): every non-blank inbound line is recorded
    verbatim at decode time, and every terminal outcome — including
    ``invalid`` — is recorded as it completes.
    """
    loop = asyncio.get_running_loop()
    slots: list[asyncio.Task[ServiceResponse] | str] = []
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        seq = tap.request(line) if tap is not None else -1
        try:
            request = parse_service_request(line, line_number=number)
        except InvalidServiceRequestError as exc:
            if tap is not None:
                tap.response(seq, exc.request_id, "invalid")
            slots.append(invalid_line(exc))
            continue
        task = loop.create_task(service.handle(request))
        if tap is not None:
            task.add_done_callback(
                lambda t, _seq=seq: _tap_response(tap, _seq, t)
            )
        slots.append(task)
    out: list[str] = []
    for slot in slots:
        if isinstance(slot, str):
            out.append(slot)
        else:
            out.append(response_line(await slot))
    return out


async def serve_socket(
    service: SolveService, path: str, *, tap: Any = None
) -> "asyncio.AbstractServer":
    """Start a unix-socket JSONL server for ``service`` at ``path``.

    Each connection speaks the same line protocol as :func:`serve_lines`
    but responses are written per-connection in that connection's input
    order.  Returns the started server; the caller owns its lifetime
    (``server.close()`` / ``wait_closed``).  ``tap`` captures traffic
    across *all* connections into one stream (seqs stay globally dense
    in decode order).
    """

    async def handle_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            lines: list[str] = []
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                lines.append(raw.decode("utf-8"))
            for line in await serve_lines(service, lines, tap=tap):
                writer.write(line.encode("utf-8") + b"\n")
            await writer.drain()
        finally:
            writer.close()

    return await asyncio.start_unix_server(handle_connection, path=path)
