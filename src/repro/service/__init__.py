"""``repro.service``: the async solve service and its load harness.

The production-shaped front door above :mod:`repro.engine`: a bounded
admission queue with selectable backpressure, priority-weighted
dequeue, per-client rate limiting, end-to-end deadlines with
cooperative mid-flight cancellation, graceful zero-lost drain, and a
seeded open/closed-loop load generator that runs deterministically
under a virtual clock.  See docs/SERVICE.md for the architecture tour.
"""

from repro.service.clock import Clock, RealClock, VirtualClock, run_virtual
from repro.service.loadgen import (
    ARRIVAL_MODES,
    POPULARITY_MODES,
    LoadProfile,
    LoadReport,
    arrival_gaps,
    arrival_times,
    capture_context,
    popularity_weights,
    run_load,
)
from repro.service.pipeline import (
    DEFAULT_PRIORITIES,
    OUTCOMES,
    Deadline,
    ServiceConfig,
    ServiceRequest,
    ServiceResponse,
    SolveService,
)
from repro.service.protocol import (
    parse_service_request,
    request_line,
    serve_lines,
    serve_socket,
)
from repro.service.queue import BACKPRESSURE_POLICIES, AdmissionQueue
from repro.service.ratelimit import RateLimiter, TokenBucket

__all__ = [
    "ARRIVAL_MODES",
    "BACKPRESSURE_POLICIES",
    "DEFAULT_PRIORITIES",
    "OUTCOMES",
    "POPULARITY_MODES",
    "AdmissionQueue",
    "Clock",
    "Deadline",
    "LoadProfile",
    "LoadReport",
    "RateLimiter",
    "RealClock",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceResponse",
    "SolveService",
    "TokenBucket",
    "VirtualClock",
    "parse_service_request",
    "request_line",
    "arrival_gaps",
    "arrival_times",
    "capture_context",
    "popularity_weights",
    "run_load",
    "run_virtual",
    "serve_lines",
    "serve_socket",
]
