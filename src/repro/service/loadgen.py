"""Seeded load generation and the latency/throughput report.

:func:`run_load` drives a :class:`~repro.service.pipeline.SolveService`
with a deterministic request stream derived from a single seed: the
instance pool, solver mix, priorities, clients, deadlines, arrival
times, and modelled service costs are all drawn from one
:func:`~repro.utils.rng.as_rng` stream, so the same
:class:`LoadProfile` always produces the same requests in the same
order.

Five arrival disciplines are supported:

* **open loop** — arrivals follow a seeded exponential interarrival
  schedule at ``rate`` requests/second, regardless of completions (the
  discipline that actually exposes queueing collapse);
* **closed loop** — ``concurrency`` synthetic clients each keep exactly
  one request in flight (classic think-time-free closed system);
* **bursty** — seeded burst trains: geometric burst sizes (mean
  ``burst_size``) arrive back-to-back, separated by exponential gaps
  stretched so the long-run average rate still matches ``rate`` — the
  shape that stresses admission control hardest at a given throughput;
* **sequential** — the deterministic isochronous schedule, exactly one
  arrival every ``1/rate`` seconds with no randomness at all (the
  clean baseline the other disciplines are compared against);
* **replay** — arrivals follow an explicit recorded timestamp list
  (``LoadProfile.replay_times``, typically lifted from a
  :mod:`repro.obs.capture` artifact), so a captured incident's exact
  arrival pattern can be re-driven against a synthetic request pool.

Passing ``capture=`` to :func:`run_load` records the soak itself at
the wire boundary — every request serialized verbatim
(:func:`~repro.service.protocol.request_line`) with its virtual-clock
arrival time and modelled cost — producing the artifact
``repro replay`` feeds back through a fresh service byte-for-byte.

Under a :class:`~repro.service.clock.VirtualClock` the whole soak runs
in simulated time — a thousand-request, minutes-long schedule executes
in well under a second of wall time and produces *identical* per-request
outcomes across runs, which is the determinism contract
``make service-smoke`` enforces.  The :class:`LoadReport` collects
per-outcome counts, the zero-lost accounting, and p50/p95/p99
latency/queue-wait quantiles read from the service's
:mod:`repro.obs` histograms.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.engine.jobs import MatchingEngine, SolveRequest
from repro.exceptions import ConfigurationError
from repro.model.generators import random_instance
from repro.obs.capture import CaptureWriter
from repro.obs.metrics import DEFAULT_TIME_EDGES
from repro.obs.record import Recorder
from repro.service.clock import Clock, RealClock, VirtualClock, run_virtual
from repro.service.pipeline import (
    DEFAULT_PRIORITIES,
    ServiceConfig,
    ServiceRequest,
    ServiceResponse,
    SolveService,
)
from repro.service.protocol import request_line
from repro.utils.rng import as_rng

__all__ = [
    "ARRIVAL_MODES",
    "POPULARITY_MODES",
    "LoadProfile",
    "LoadReport",
    "arrival_gaps",
    "arrival_times",
    "capture_context",
    "popularity_weights",
    "run_load",
]

#: supported arrival disciplines.  ``open`` and ``closed`` are the
#: historical pair; ``bursty`` and ``sequential`` share the open-loop
#: driver with a different gap schedule (see :func:`arrival_gaps`);
#: ``replay`` drives the timed driver from an explicit recorded
#: timestamp list instead of a seeded draw.
ARRIVAL_MODES = ("open", "closed", "bursty", "sequential", "replay")

#: supported instance-popularity disciplines (how requests draw from
#: the instance pool).  ``uniform`` is the historical behaviour;
#: ``zipfian`` and ``hotspot`` re-request hot fingerprints the way real
#: traffic does, which is what exercises per-shard cache locality.
POPULARITY_MODES = ("uniform", "zipfian", "hotspot")


@dataclass(frozen=True)
class LoadProfile:
    """Everything that defines one reproducible load run.

    Attributes
    ----------
    requests / seed:
        Stream length and the single seed every random choice derives
        from.
    mode:
        Arrival discipline, one of :data:`ARRIVAL_MODES`: ``open``
        (seeded Poisson arrivals at ``rate``/s), ``closed``
        (``concurrency`` clients, one request in flight each),
        ``bursty`` (seeded burst trains averaging ``rate``/s), or
        ``sequential`` (fixed ``1/rate`` gaps, no randomness).
    burst_size:
        Mean burst length for ``mode="bursty"`` (geometric burst sizes
        are drawn with success probability ``1/burst_size``); other
        modes ignore it.
    pool:
        Number of distinct instances; requests draw from the pool, so a
        smaller pool drives more engine cache/dedup hits.
    k_choices / n_choices:
        Instance shapes sampled for the pool.
    solvers:
        Solver mix sampled per request (``binary`` contributes
        ``no_stable`` outcomes on instances without a stable binary
        matching).
    verify_fraction:
        Fraction of requests asking the engine to verify stability
        (exercises the verdict cache).
    deadline_s / tight_fraction / tight_deadline_s:
        Default per-request budget, plus a slice of requests carrying a
        deliberately unmeetable budget so deadline rejections are part
        of every soak.
    cost_base_s / cost_jitter_s:
        Modelled service time charged to the clock per request
        (deterministic per request id).
    clients:
        Client names cycled for rate-limiting attribution.
    popularity:
        Instance-popularity discipline, one of
        :data:`POPULARITY_MODES`.  ``uniform`` draws every pool index
        with equal probability (stream-identical to the historical
        behaviour); ``zipfian`` draws index ``i`` with probability
        proportional to ``1 / (i + 1) ** zipf_s``; ``hotspot`` sends
        ``hotspot_weight`` of the traffic to the first
        ``ceil(hotspot_fraction * pool)`` instances (uniform within
        each side).
    zipf_s:
        Zipf exponent for ``popularity="zipfian"`` (larger = hotter
        head).
    hotspot_fraction / hotspot_weight:
        Hot-set size (fraction of the pool) and the probability mass
        routed to it for ``popularity="hotspot"``.
    """

    requests: int = 100
    seed: int = 0
    mode: str = "open"
    rate: float = 200.0
    concurrency: int = 8
    pool: int = 8
    k_choices: tuple[int, ...] = (3, 4)
    n_choices: tuple[int, ...] = (4, 6, 8)
    solvers: tuple[str, ...] = ("kary", "kary", "priority", "binary")
    verify_fraction: float = 0.5
    deadline_s: float = 30.0
    tight_fraction: float = 0.1
    tight_deadline_s: float = 1e-4
    cost_base_s: float = 0.01
    cost_jitter_s: float = 0.02
    clients: tuple[str, ...] = ("alpha", "beta", "gamma")
    burst_size: float = 8.0
    popularity: str = "uniform"
    zipf_s: float = 1.1
    hotspot_fraction: float = 0.125
    hotspot_weight: float = 0.9
    #: mode="replay" only: explicit arrival timestamps (seconds from
    #: soak start, non-decreasing, one per request) — the recorded
    #: schedule an incident capture contributes as an arrival source.
    replay_times: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.popularity not in POPULARITY_MODES:
            raise ConfigurationError(
                f"unknown popularity mode {self.popularity!r}; choose from "
                f"{POPULARITY_MODES}"
            )
        if self.zipf_s <= 0:
            raise ConfigurationError(f"zipf_s must be positive, got {self.zipf_s}")
        if not 0.0 < self.hotspot_fraction <= 1.0:
            raise ConfigurationError(
                f"hotspot_fraction must be in (0, 1], got {self.hotspot_fraction}"
            )
        if not 0.0 <= self.hotspot_weight <= 1.0:
            raise ConfigurationError(
                f"hotspot_weight must be in [0, 1], got {self.hotspot_weight}"
            )
        if self.requests < 1:
            raise ConfigurationError(f"requests must be >= 1, got {self.requests}")
        if self.mode not in ARRIVAL_MODES:
            raise ConfigurationError(
                f"unknown arrival mode {self.mode!r}; choose from {ARRIVAL_MODES}"
            )
        if self.rate <= 0 or self.concurrency < 1 or self.pool < 1:
            raise ConfigurationError(
                "rate must be positive, concurrency and pool >= 1; got "
                f"rate={self.rate} concurrency={self.concurrency} pool={self.pool}"
            )
        if not 0.0 <= self.tight_fraction <= 1.0:
            raise ConfigurationError(
                f"tight_fraction must be in [0, 1], got {self.tight_fraction}"
            )
        if self.burst_size < 1.0:
            raise ConfigurationError(
                f"burst_size must be >= 1, got {self.burst_size}"
            )
        if self.mode == "replay":
            if len(self.replay_times) < self.requests:
                raise ConfigurationError(
                    f"mode='replay' needs one arrival time per request; got "
                    f"{len(self.replay_times)} time(s) for {self.requests} "
                    "request(s)"
                )
            last = 0.0
            for t in self.replay_times[: self.requests]:
                if t < last:
                    raise ConfigurationError(
                        "replay_times must be non-negative and non-decreasing"
                    )
                last = float(t)


@dataclass
class LoadReport:
    """Outcome of one load run, JSON-exportable.

    ``outcome_by_id`` maps every request id to its terminal outcome —
    the object the determinism check compares across runs.  ``lost``
    must be 0 after every drain (the zero-lost invariant).  ``shards``
    is populated by fleet runs only: one entry per shard carrying its
    routed/responded counts and warm-cache hit rate (the per-shard
    locality the consistent-hash ring exists to protect); single-service
    runs leave it empty.
    """

    requests: int
    seed: int
    mode: str
    virtual: bool
    duration_s: float
    accepted: int
    responded: int
    lost: int
    outcomes: dict[str, int] = field(default_factory=dict)
    outcome_by_id: dict[str, str] = field(default_factory=dict)
    latency: dict[str, float] = field(default_factory=dict)
    queue_wait: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    shards: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Responded requests per (possibly virtual) second."""
        return self.responded / self.duration_s if self.duration_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (the ``repro load`` artifact schema v1)."""
        return {
            "schema": 1,
            "requests": self.requests,
            "seed": self.seed,
            "mode": self.mode,
            "virtual": self.virtual,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "accepted": self.accepted,
            "responded": self.responded,
            "lost": self.lost,
            "outcomes": dict(sorted(self.outcomes.items())),
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "counters": dict(sorted(self.counters.items())),
            "shards": {name: self.shards[name] for name in sorted(self.shards)},
            "outcome_by_id": dict(sorted(self.outcome_by_id.items())),
        }

    def to_json(self, **dump_kwargs: Any) -> str:
        """Serialize :meth:`to_dict` as JSON."""
        return json.dumps(self.to_dict(), **dump_kwargs)


def popularity_weights(profile: LoadProfile) -> "list[float] | None":
    """Pool-index draw probabilities for ``profile``, or ``None`` = uniform.

    A pure function of the profile (no RNG), so routing studies can
    reason about the exact distribution the stream was drawn from.
    Index 0 is always the most popular instance.
    """
    if profile.popularity == "uniform":
        return None
    if profile.popularity == "zipfian":
        raw = [1.0 / (i + 1) ** profile.zipf_s for i in range(profile.pool)]
    else:  # hotspot
        hot = min(profile.pool, max(1, math.ceil(profile.hotspot_fraction * profile.pool)))
        cold = profile.pool - hot
        raw = [
            (profile.hotspot_weight / hot)
            if i < hot
            else ((1.0 - profile.hotspot_weight) / cold if cold else 0.0)
            for i in range(profile.pool)
        ]
    total = sum(raw)
    return [w / total for w in raw]


def build_requests(
    profile: LoadProfile, priorities: Mapping[str, int]
) -> tuple[list[ServiceRequest], dict[str, float]]:
    """Materialize the deterministic request stream for ``profile``.

    Returns the requests in arrival order plus the per-request modelled
    service cost (seconds) keyed by request id — the table the service's
    cost model reads.  Everything is a pure function of the profile.
    """
    rng = as_rng(profile.seed)
    instances = []
    for _ in range(profile.pool):
        k = int(rng.choice(list(profile.k_choices)))
        n = int(rng.choice(list(profile.n_choices)))
        instances.append(random_instance(k, n, seed=int(rng.integers(2**31))))
    weights = popularity_weights(profile)
    priority_names = sorted(priorities)
    requests: list[ServiceRequest] = []
    costs: dict[str, float] = {}
    for i in range(profile.requests):
        request_id = f"req-{i:05d}"
        solver = str(rng.choice(list(profile.solvers)))
        tight = bool(rng.random() < profile.tight_fraction)
        if weights is None:
            # keep the exact historical RNG call so uniform streams stay
            # byte-identical to pre-popularity baselines
            pool_index = int(rng.integers(profile.pool))
        else:
            pool_index = int(rng.choice(profile.pool, p=weights))
        requests.append(
            ServiceRequest(
                request_id=request_id,
                solve=SolveRequest(
                    instance=instances[pool_index],
                    solver=solver,
                    verify=bool(rng.random() < profile.verify_fraction),
                    label=request_id,
                ),
                priority=priority_names[int(rng.integers(len(priority_names)))],
                client=profile.clients[i % len(profile.clients)],
                deadline_s=profile.tight_deadline_s if tight else profile.deadline_s,
            )
        )
        costs[request_id] = profile.cost_base_s + float(
            rng.random()
        ) * profile.cost_jitter_s
    return requests, costs


def arrival_gaps(profile: LoadProfile, count: int) -> list[float]:
    """Sleep gap before each of ``count`` arrivals, per the discipline.

    A pure function of the profile (one ``seed + 1`` RNG stream,
    independent of request content), shared by the single-service and
    fleet drivers so both soak harnesses see identical schedules:

    * ``open`` — seeded exponential interarrivals at ``rate``/s; the
      exact historical draw, so pre-existing open-loop streams stay
      byte-identical;
    * ``sequential`` — a constant ``1/rate`` gap, no RNG at all;
    * ``bursty`` — geometric burst sizes (mean ``burst_size``) arrive
      back-to-back (zero gap within a burst); inter-burst gaps are
      exponential with mean ``burst_size / rate`` so the long-run
      average rate still matches ``rate``.

    ``replay`` returns the successive differences of
    ``profile.replay_times`` (first gap = first timestamp); drivers
    should prefer :func:`arrival_times` for replay so recorded absolute
    timestamps are hit exactly rather than re-accumulated.

    ``closed`` has no arrival schedule (completions drive admissions)
    and is rejected here.
    """
    if profile.mode == "replay":
        times = [float(t) for t in profile.replay_times[:count]]
        return [b - a for a, b in zip([0.0] + times, times)]
    if profile.mode == "open":
        rng = as_rng(profile.seed + 1)
        return [float(g) for g in rng.exponential(1.0 / profile.rate, count)]
    if profile.mode == "sequential":
        return [1.0 / profile.rate] * count
    if profile.mode == "bursty":
        rng = as_rng(profile.seed + 1)
        gaps: list[float] = []
        while len(gaps) < count:
            size = min(
                int(rng.geometric(1.0 / profile.burst_size)), count - len(gaps)
            )
            gaps.append(float(rng.exponential(profile.burst_size / profile.rate)))
            gaps.extend([0.0] * (size - 1))
        return gaps
    raise ConfigurationError(
        f"mode {profile.mode!r} has no arrival schedule"
    )


def arrival_times(profile: LoadProfile, count: int) -> list[float]:
    """Absolute arrival timestamps (seconds from soak start) per discipline.

    For ``replay`` this is the recorded schedule verbatim — no float
    re-accumulation, so a replayed soak parks on the exact captured
    timestamps.  For the synthetic modes it is the running sum of
    :func:`arrival_gaps`, which under a virtual clock reproduces the
    historical gap-by-gap timeline bit-for-bit (each wakeup lands on
    its exact due value, so the next due is the same float either way).
    """
    if profile.mode == "replay":
        return [float(t) for t in profile.replay_times[:count]]
    times: list[float] = []
    t = 0.0
    for gap in arrival_gaps(profile, count):
        t += gap
        times.append(t)
    return times


#: dispatch-time capture hooks: ``record(request) -> seq`` at arrival,
#: ``on_done(seq, task)`` once the response task settles.
_CaptureHooks = tuple[
    Callable[[ServiceRequest], int],
    Callable[[int, "asyncio.Task[ServiceResponse]"], None],
]


def _capture_hooks(
    tap: CaptureWriter,
    requests: list[ServiceRequest],
    costs: Mapping[str, float],
) -> _CaptureHooks:
    """Wire-boundary recording for the load drivers.

    Requests are serialized up front (``request_line``) so the capture
    carries the exact bytes a replayed service will re-parse; the
    modelled cost rides along so the replayer can re-charge the same
    service time without regenerating the stream.
    """
    lines = {r.request_id: request_line(r) for r in requests}

    def record(request: ServiceRequest) -> int:
        return tap.request(
            lines[request.request_id], cost_s=costs[request.request_id]
        )

    def on_done(seq: int, task: "asyncio.Task[ServiceResponse]") -> None:
        if task.cancelled() or task.exception() is not None:
            return
        response = task.result()
        tap.response(seq, response.request_id, response.outcome)

    return record, on_done


async def _drive_timed(
    service: SolveService,
    clock: Clock,
    profile: LoadProfile,
    requests: list[ServiceRequest],
    *,
    hooks: "_CaptureHooks | None" = None,
) -> list[ServiceResponse]:
    """Schedule-driven driver for the open/bursty/sequential/replay modes.

    Arrivals park on *absolute* due times (``sleep_until``) so a replay
    schedule hits its recorded timestamps exactly; for the synthetic
    modes the absolute schedule is float-identical to the historical
    gap accumulation under a virtual clock (see :func:`arrival_times`).
    """
    times = arrival_times(profile, len(requests))
    tasks: list[asyncio.Task[ServiceResponse]] = []
    loop = asyncio.get_running_loop()
    origin = clock.now()
    for request, due in zip(requests, times):
        await clock.sleep_until(origin + due)
        task = loop.create_task(service.handle(request))
        if hooks is not None:
            record, on_done = hooks
            seq = record(request)
            task.add_done_callback(lambda t, _seq=seq: on_done(_seq, t))
        tasks.append(task)
    return list(await asyncio.gather(*tasks))


async def _drive_closed(
    service: SolveService,
    profile: LoadProfile,
    requests: list[ServiceRequest],
    *,
    hooks: "_CaptureHooks | None" = None,
) -> list[ServiceResponse]:
    """Closed-loop driver: ``concurrency`` clients, one in flight each."""
    pending = list(reversed(requests))
    responses: dict[str, ServiceResponse] = {}
    loop = asyncio.get_running_loop()

    async def client() -> None:
        while pending:
            request = pending.pop()
            if hooks is not None:
                record, on_done = hooks
                seq = record(request)
                task = loop.create_task(service.handle(request))
                task.add_done_callback(lambda t, _seq=seq: on_done(_seq, t))
                responses[request.request_id] = await task
            else:
                responses[request.request_id] = await service.handle(request)

    await asyncio.gather(*(client() for _ in range(profile.concurrency)))
    return [responses[r.request_id] for r in requests]


def capture_context(
    *,
    kind: str,
    virtual: bool,
    profile: "LoadProfile | None" = None,
    config: "ServiceConfig | None" = None,
) -> dict[str, Any]:
    """Context header for a traffic capture (single-service shape).

    Records what a replay needs to rebuild the run: the capture kind
    (``load``, ``serve``, …), the clock discipline, the profile header
    fields the replayed :class:`LoadReport` echoes, and the service
    configuration (minus the non-serializable cost model — captured
    per-request as ``cost_s`` instead).  The fleet layer extends this
    dict with its own topology fields.
    """
    context: dict[str, Any] = {
        "kind": kind,
        "clock": "virtual" if virtual else "real",
    }
    if profile is not None:
        context["profile"] = {
            "requests": profile.requests,
            "seed": profile.seed,
            "mode": profile.mode,
        }
    if config is not None:
        context["service"] = {
            "queue_capacity": config.queue_capacity,
            "policy": config.policy,
            "workers": config.workers,
            # a pair list, not a mapping: the canonical sort_keys dump
            # would reorder a mapping, and the queue's weighted
            # round-robin breaks ties in class *insertion* order
            "priorities": [
                [name, weight] for name, weight in config.priorities.items()
            ],
            "rate_capacity": config.rate_capacity,
            "rate_refill_per_s": config.rate_refill_per_s,
            "default_deadline_s": config.default_deadline_s,
        }
    return context


def _quantiles(recorder: Recorder, name: str) -> dict[str, float]:
    hist = recorder.metrics.histogram(name)
    if hist is None or hist.count == 0:
        return {}
    out: dict[str, float] = {}
    for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
        value = hist.quantile(q)
        if value is not None:
            out[label] = float(value)
    out["mean"] = hist.sum / hist.count
    out["max"] = float(hist.max if hist.max is not None else 0.0)
    return out


def run_load(
    profile: LoadProfile,
    *,
    config: "ServiceConfig | None" = None,
    virtual: bool = True,
    recorder: "Recorder | None" = None,
    capture: "str | Path | None" = None,
) -> LoadReport:
    """Run one full load soak and return its :class:`LoadReport`.

    Builds a fresh serial-backend engine and service per run (so runs
    are hermetic), drives the profile's arrival schedule, drains, and
    asserts nothing was lost.  ``virtual=True`` (the default) runs under
    the :class:`~repro.service.clock.VirtualClock` — deterministic and
    near-instant; ``virtual=False`` uses wall-clock time.  Pass a
    ``recorder`` to keep the trace/metrics for export.

    ``capture`` records the soak at the wire boundary into a
    schema-versioned JSONL artifact (:mod:`repro.obs.capture`): every
    request serialized verbatim with its clock-relative arrival time
    and modelled cost, every terminal outcome, plus a context header
    carrying the profile/service configuration the replayer needs to
    rebuild this exact run.  Under a virtual clock the capture start is
    pinned to 0.0 so recorded ``t_s`` values equal ``clock.now()`` at
    dispatch bit-for-bit.
    """
    sink = recorder if recorder is not None else Recorder()
    clock: Clock = VirtualClock() if virtual else RealClock()
    base = config if config is not None else ServiceConfig(
        queue_capacity=64,
        policy="reject",
        workers=4,
        priorities=dict(DEFAULT_PRIORITIES),
    )
    requests, costs = build_requests(profile, base.priorities)
    # replace() keeps every future ServiceConfig field instead of a
    # field-by-field rebuild that would silently drop new ones.
    service_config = replace(
        base,
        priorities=dict(base.priorities),
        cost_model=lambda req: costs[req.request_id],
    )
    sink.metrics.register_histogram("service.latency.seconds", DEFAULT_TIME_EDGES)
    sink.metrics.register_histogram("service.queue_wait.seconds", DEFAULT_TIME_EDGES)
    engine = MatchingEngine(backend="serial", sink=sink)
    service = SolveService(engine, config=service_config, clock=clock, sink=sink)

    writer: "CaptureWriter | None" = None
    hooks: "_CaptureHooks | None" = None
    if capture is not None:
        writer = CaptureWriter(
            capture,
            now=clock.now,
            start=0.0 if virtual else None,
            context=capture_context(
                kind="load", profile=profile, config=base, virtual=virtual
            ),
        )
        hooks = _capture_hooks(writer, requests, costs)

    async def soak() -> tuple[list[ServiceResponse], float]:
        start = clock.now()
        async with service:
            if profile.mode == "closed":
                responses = await _drive_closed(
                    service, profile, requests, hooks=hooks
                )
            else:
                responses = await _drive_timed(
                    service, clock, profile, requests, hooks=hooks
                )
        return responses, clock.now() - start

    async def main() -> tuple[list[ServiceResponse], float]:
        if isinstance(clock, VirtualClock):
            return await run_virtual(clock, soak())
        return await soak()

    try:
        responses, duration = asyncio.run(main())
    finally:
        engine.close()
        if writer is not None:
            writer.close()

    outcomes: dict[str, int] = {}
    outcome_by_id: dict[str, str] = {}
    for response in responses:
        outcomes[response.outcome] = outcomes.get(response.outcome, 0) + 1
        outcome_by_id[response.request_id] = response.outcome
    stats = service.stats()
    return LoadReport(
        requests=profile.requests,
        seed=profile.seed,
        mode=profile.mode,
        virtual=virtual,
        duration_s=duration,
        accepted=stats["accepted"],
        responded=stats["responded"],
        lost=stats["lost"],
        outcomes=outcomes,
        outcome_by_id=outcome_by_id,
        latency=_quantiles(sink, "service.latency.seconds"),
        queue_wait=_quantiles(sink, "service.queue_wait.seconds"),
        counters={
            name: value
            for name, value in sink.metrics.counters().items()
            if name.startswith("service.")
        },
    )
