"""Seeded load generation and the latency/throughput report.

:func:`run_load` drives a :class:`~repro.service.pipeline.SolveService`
with a deterministic request stream derived from a single seed: the
instance pool, solver mix, priorities, clients, deadlines, arrival
times, and modelled service costs are all drawn from one
:func:`~repro.utils.rng.as_rng` stream, so the same
:class:`LoadProfile` always produces the same requests in the same
order.

Four arrival disciplines are supported:

* **open loop** — arrivals follow a seeded exponential interarrival
  schedule at ``rate`` requests/second, regardless of completions (the
  discipline that actually exposes queueing collapse);
* **closed loop** — ``concurrency`` synthetic clients each keep exactly
  one request in flight (classic think-time-free closed system);
* **bursty** — seeded burst trains: geometric burst sizes (mean
  ``burst_size``) arrive back-to-back, separated by exponential gaps
  stretched so the long-run average rate still matches ``rate`` — the
  shape that stresses admission control hardest at a given throughput;
* **sequential** — the deterministic isochronous schedule, exactly one
  arrival every ``1/rate`` seconds with no randomness at all (the
  clean baseline the other disciplines are compared against).

Under a :class:`~repro.service.clock.VirtualClock` the whole soak runs
in simulated time — a thousand-request, minutes-long schedule executes
in well under a second of wall time and produces *identical* per-request
outcomes across runs, which is the determinism contract
``make service-smoke`` enforces.  The :class:`LoadReport` collects
per-outcome counts, the zero-lost accounting, and p50/p95/p99
latency/queue-wait quantiles read from the service's
:mod:`repro.obs` histograms.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.engine.jobs import MatchingEngine, SolveRequest
from repro.exceptions import ConfigurationError
from repro.model.generators import random_instance
from repro.obs.metrics import DEFAULT_TIME_EDGES
from repro.obs.record import Recorder
from repro.service.clock import Clock, RealClock, VirtualClock, run_virtual
from repro.service.pipeline import (
    DEFAULT_PRIORITIES,
    ServiceConfig,
    ServiceRequest,
    ServiceResponse,
    SolveService,
)
from repro.utils.rng import as_rng

__all__ = [
    "ARRIVAL_MODES",
    "POPULARITY_MODES",
    "LoadProfile",
    "LoadReport",
    "arrival_gaps",
    "popularity_weights",
    "run_load",
]

#: supported arrival disciplines.  ``open`` and ``closed`` are the
#: historical pair; ``bursty`` and ``sequential`` share the open-loop
#: driver with a different gap schedule (see :func:`arrival_gaps`).
ARRIVAL_MODES = ("open", "closed", "bursty", "sequential")

#: supported instance-popularity disciplines (how requests draw from
#: the instance pool).  ``uniform`` is the historical behaviour;
#: ``zipfian`` and ``hotspot`` re-request hot fingerprints the way real
#: traffic does, which is what exercises per-shard cache locality.
POPULARITY_MODES = ("uniform", "zipfian", "hotspot")


@dataclass(frozen=True)
class LoadProfile:
    """Everything that defines one reproducible load run.

    Attributes
    ----------
    requests / seed:
        Stream length and the single seed every random choice derives
        from.
    mode:
        Arrival discipline, one of :data:`ARRIVAL_MODES`: ``open``
        (seeded Poisson arrivals at ``rate``/s), ``closed``
        (``concurrency`` clients, one request in flight each),
        ``bursty`` (seeded burst trains averaging ``rate``/s), or
        ``sequential`` (fixed ``1/rate`` gaps, no randomness).
    burst_size:
        Mean burst length for ``mode="bursty"`` (geometric burst sizes
        are drawn with success probability ``1/burst_size``); other
        modes ignore it.
    pool:
        Number of distinct instances; requests draw from the pool, so a
        smaller pool drives more engine cache/dedup hits.
    k_choices / n_choices:
        Instance shapes sampled for the pool.
    solvers:
        Solver mix sampled per request (``binary`` contributes
        ``no_stable`` outcomes on instances without a stable binary
        matching).
    verify_fraction:
        Fraction of requests asking the engine to verify stability
        (exercises the verdict cache).
    deadline_s / tight_fraction / tight_deadline_s:
        Default per-request budget, plus a slice of requests carrying a
        deliberately unmeetable budget so deadline rejections are part
        of every soak.
    cost_base_s / cost_jitter_s:
        Modelled service time charged to the clock per request
        (deterministic per request id).
    clients:
        Client names cycled for rate-limiting attribution.
    popularity:
        Instance-popularity discipline, one of
        :data:`POPULARITY_MODES`.  ``uniform`` draws every pool index
        with equal probability (stream-identical to the historical
        behaviour); ``zipfian`` draws index ``i`` with probability
        proportional to ``1 / (i + 1) ** zipf_s``; ``hotspot`` sends
        ``hotspot_weight`` of the traffic to the first
        ``ceil(hotspot_fraction * pool)`` instances (uniform within
        each side).
    zipf_s:
        Zipf exponent for ``popularity="zipfian"`` (larger = hotter
        head).
    hotspot_fraction / hotspot_weight:
        Hot-set size (fraction of the pool) and the probability mass
        routed to it for ``popularity="hotspot"``.
    """

    requests: int = 100
    seed: int = 0
    mode: str = "open"
    rate: float = 200.0
    concurrency: int = 8
    pool: int = 8
    k_choices: tuple[int, ...] = (3, 4)
    n_choices: tuple[int, ...] = (4, 6, 8)
    solvers: tuple[str, ...] = ("kary", "kary", "priority", "binary")
    verify_fraction: float = 0.5
    deadline_s: float = 30.0
    tight_fraction: float = 0.1
    tight_deadline_s: float = 1e-4
    cost_base_s: float = 0.01
    cost_jitter_s: float = 0.02
    clients: tuple[str, ...] = ("alpha", "beta", "gamma")
    burst_size: float = 8.0
    popularity: str = "uniform"
    zipf_s: float = 1.1
    hotspot_fraction: float = 0.125
    hotspot_weight: float = 0.9

    def __post_init__(self) -> None:
        if self.popularity not in POPULARITY_MODES:
            raise ConfigurationError(
                f"unknown popularity mode {self.popularity!r}; choose from "
                f"{POPULARITY_MODES}"
            )
        if self.zipf_s <= 0:
            raise ConfigurationError(f"zipf_s must be positive, got {self.zipf_s}")
        if not 0.0 < self.hotspot_fraction <= 1.0:
            raise ConfigurationError(
                f"hotspot_fraction must be in (0, 1], got {self.hotspot_fraction}"
            )
        if not 0.0 <= self.hotspot_weight <= 1.0:
            raise ConfigurationError(
                f"hotspot_weight must be in [0, 1], got {self.hotspot_weight}"
            )
        if self.requests < 1:
            raise ConfigurationError(f"requests must be >= 1, got {self.requests}")
        if self.mode not in ARRIVAL_MODES:
            raise ConfigurationError(
                f"unknown arrival mode {self.mode!r}; choose from {ARRIVAL_MODES}"
            )
        if self.rate <= 0 or self.concurrency < 1 or self.pool < 1:
            raise ConfigurationError(
                "rate must be positive, concurrency and pool >= 1; got "
                f"rate={self.rate} concurrency={self.concurrency} pool={self.pool}"
            )
        if not 0.0 <= self.tight_fraction <= 1.0:
            raise ConfigurationError(
                f"tight_fraction must be in [0, 1], got {self.tight_fraction}"
            )
        if self.burst_size < 1.0:
            raise ConfigurationError(
                f"burst_size must be >= 1, got {self.burst_size}"
            )


@dataclass
class LoadReport:
    """Outcome of one load run, JSON-exportable.

    ``outcome_by_id`` maps every request id to its terminal outcome —
    the object the determinism check compares across runs.  ``lost``
    must be 0 after every drain (the zero-lost invariant).  ``shards``
    is populated by fleet runs only: one entry per shard carrying its
    routed/responded counts and warm-cache hit rate (the per-shard
    locality the consistent-hash ring exists to protect); single-service
    runs leave it empty.
    """

    requests: int
    seed: int
    mode: str
    virtual: bool
    duration_s: float
    accepted: int
    responded: int
    lost: int
    outcomes: dict[str, int] = field(default_factory=dict)
    outcome_by_id: dict[str, str] = field(default_factory=dict)
    latency: dict[str, float] = field(default_factory=dict)
    queue_wait: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    shards: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Responded requests per (possibly virtual) second."""
        return self.responded / self.duration_s if self.duration_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (the ``repro load`` artifact schema v1)."""
        return {
            "schema": 1,
            "requests": self.requests,
            "seed": self.seed,
            "mode": self.mode,
            "virtual": self.virtual,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "accepted": self.accepted,
            "responded": self.responded,
            "lost": self.lost,
            "outcomes": dict(sorted(self.outcomes.items())),
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "counters": dict(sorted(self.counters.items())),
            "shards": {name: self.shards[name] for name in sorted(self.shards)},
            "outcome_by_id": dict(sorted(self.outcome_by_id.items())),
        }

    def to_json(self, **dump_kwargs: Any) -> str:
        """Serialize :meth:`to_dict` as JSON."""
        return json.dumps(self.to_dict(), **dump_kwargs)


def popularity_weights(profile: LoadProfile) -> "list[float] | None":
    """Pool-index draw probabilities for ``profile``, or ``None`` = uniform.

    A pure function of the profile (no RNG), so routing studies can
    reason about the exact distribution the stream was drawn from.
    Index 0 is always the most popular instance.
    """
    if profile.popularity == "uniform":
        return None
    if profile.popularity == "zipfian":
        raw = [1.0 / (i + 1) ** profile.zipf_s for i in range(profile.pool)]
    else:  # hotspot
        hot = min(profile.pool, max(1, math.ceil(profile.hotspot_fraction * profile.pool)))
        cold = profile.pool - hot
        raw = [
            (profile.hotspot_weight / hot)
            if i < hot
            else ((1.0 - profile.hotspot_weight) / cold if cold else 0.0)
            for i in range(profile.pool)
        ]
    total = sum(raw)
    return [w / total for w in raw]


def build_requests(
    profile: LoadProfile, priorities: Mapping[str, int]
) -> tuple[list[ServiceRequest], dict[str, float]]:
    """Materialize the deterministic request stream for ``profile``.

    Returns the requests in arrival order plus the per-request modelled
    service cost (seconds) keyed by request id — the table the service's
    cost model reads.  Everything is a pure function of the profile.
    """
    rng = as_rng(profile.seed)
    instances = []
    for _ in range(profile.pool):
        k = int(rng.choice(list(profile.k_choices)))
        n = int(rng.choice(list(profile.n_choices)))
        instances.append(random_instance(k, n, seed=int(rng.integers(2**31))))
    weights = popularity_weights(profile)
    priority_names = sorted(priorities)
    requests: list[ServiceRequest] = []
    costs: dict[str, float] = {}
    for i in range(profile.requests):
        request_id = f"req-{i:05d}"
        solver = str(rng.choice(list(profile.solvers)))
        tight = bool(rng.random() < profile.tight_fraction)
        if weights is None:
            # keep the exact historical RNG call so uniform streams stay
            # byte-identical to pre-popularity baselines
            pool_index = int(rng.integers(profile.pool))
        else:
            pool_index = int(rng.choice(profile.pool, p=weights))
        requests.append(
            ServiceRequest(
                request_id=request_id,
                solve=SolveRequest(
                    instance=instances[pool_index],
                    solver=solver,
                    verify=bool(rng.random() < profile.verify_fraction),
                    label=request_id,
                ),
                priority=priority_names[int(rng.integers(len(priority_names)))],
                client=profile.clients[i % len(profile.clients)],
                deadline_s=profile.tight_deadline_s if tight else profile.deadline_s,
            )
        )
        costs[request_id] = profile.cost_base_s + float(
            rng.random()
        ) * profile.cost_jitter_s
    return requests, costs


def arrival_gaps(profile: LoadProfile, count: int) -> list[float]:
    """Sleep gap before each of ``count`` arrivals, per the discipline.

    A pure function of the profile (one ``seed + 1`` RNG stream,
    independent of request content), shared by the single-service and
    fleet drivers so both soak harnesses see identical schedules:

    * ``open`` — seeded exponential interarrivals at ``rate``/s; the
      exact historical draw, so pre-existing open-loop streams stay
      byte-identical;
    * ``sequential`` — a constant ``1/rate`` gap, no RNG at all;
    * ``bursty`` — geometric burst sizes (mean ``burst_size``) arrive
      back-to-back (zero gap within a burst); inter-burst gaps are
      exponential with mean ``burst_size / rate`` so the long-run
      average rate still matches ``rate``.

    ``closed`` has no arrival schedule (completions drive admissions)
    and is rejected here.
    """
    if profile.mode == "open":
        rng = as_rng(profile.seed + 1)
        return [float(g) for g in rng.exponential(1.0 / profile.rate, count)]
    if profile.mode == "sequential":
        return [1.0 / profile.rate] * count
    if profile.mode == "bursty":
        rng = as_rng(profile.seed + 1)
        gaps: list[float] = []
        while len(gaps) < count:
            size = min(
                int(rng.geometric(1.0 / profile.burst_size)), count - len(gaps)
            )
            gaps.append(float(rng.exponential(profile.burst_size / profile.rate)))
            gaps.extend([0.0] * (size - 1))
        return gaps
    raise ConfigurationError(
        f"mode {profile.mode!r} has no arrival schedule"
    )


async def _drive_timed(
    service: SolveService,
    clock: Clock,
    profile: LoadProfile,
    requests: list[ServiceRequest],
) -> list[ServiceResponse]:
    """Schedule-driven driver for the open/bursty/sequential disciplines."""
    gaps = arrival_gaps(profile, len(requests))
    tasks: list[asyncio.Task[ServiceResponse]] = []
    loop = asyncio.get_running_loop()
    for request, gap in zip(requests, gaps):
        await clock.sleep(gap)
        tasks.append(loop.create_task(service.handle(request)))
    return list(await asyncio.gather(*tasks))


async def _drive_closed(
    service: SolveService,
    profile: LoadProfile,
    requests: list[ServiceRequest],
) -> list[ServiceResponse]:
    """Closed-loop driver: ``concurrency`` clients, one in flight each."""
    pending = list(reversed(requests))
    responses: dict[str, ServiceResponse] = {}

    async def client() -> None:
        while pending:
            request = pending.pop()
            responses[request.request_id] = await service.handle(request)

    await asyncio.gather(*(client() for _ in range(profile.concurrency)))
    return [responses[r.request_id] for r in requests]


def _quantiles(recorder: Recorder, name: str) -> dict[str, float]:
    hist = recorder.metrics.histogram(name)
    if hist is None or hist.count == 0:
        return {}
    out: dict[str, float] = {}
    for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
        value = hist.quantile(q)
        if value is not None:
            out[label] = float(value)
    out["mean"] = hist.sum / hist.count
    out["max"] = float(hist.max if hist.max is not None else 0.0)
    return out


def run_load(
    profile: LoadProfile,
    *,
    config: "ServiceConfig | None" = None,
    virtual: bool = True,
    recorder: "Recorder | None" = None,
) -> LoadReport:
    """Run one full load soak and return its :class:`LoadReport`.

    Builds a fresh serial-backend engine and service per run (so runs
    are hermetic), drives the profile's arrival schedule, drains, and
    asserts nothing was lost.  ``virtual=True`` (the default) runs under
    the :class:`~repro.service.clock.VirtualClock` — deterministic and
    near-instant; ``virtual=False`` uses wall-clock time.  Pass a
    ``recorder`` to keep the trace/metrics for export.
    """
    sink = recorder if recorder is not None else Recorder()
    clock: Clock = VirtualClock() if virtual else RealClock()
    base = config if config is not None else ServiceConfig(
        queue_capacity=64,
        policy="reject",
        workers=4,
        priorities=dict(DEFAULT_PRIORITIES),
    )
    requests, costs = build_requests(profile, base.priorities)
    service_config = ServiceConfig(
        queue_capacity=base.queue_capacity,
        policy=base.policy,
        workers=base.workers,
        priorities=dict(base.priorities),
        rate_capacity=base.rate_capacity,
        rate_refill_per_s=base.rate_refill_per_s,
        default_deadline_s=base.default_deadline_s,
        cost_model=lambda req: costs[req.request_id],
    )
    sink.metrics.register_histogram("service.latency.seconds", DEFAULT_TIME_EDGES)
    sink.metrics.register_histogram("service.queue_wait.seconds", DEFAULT_TIME_EDGES)
    engine = MatchingEngine(backend="serial", sink=sink)
    service = SolveService(engine, config=service_config, clock=clock, sink=sink)

    async def soak() -> tuple[list[ServiceResponse], float]:
        start = clock.now()
        async with service:
            if profile.mode == "closed":
                responses = await _drive_closed(service, profile, requests)
            else:
                responses = await _drive_timed(service, clock, profile, requests)
        return responses, clock.now() - start

    async def main() -> tuple[list[ServiceResponse], float]:
        if isinstance(clock, VirtualClock):
            return await run_virtual(clock, soak())
        return await soak()

    try:
        responses, duration = asyncio.run(main())
    finally:
        engine.close()

    outcomes: dict[str, int] = {}
    outcome_by_id: dict[str, str] = {}
    for response in responses:
        outcomes[response.outcome] = outcomes.get(response.outcome, 0) + 1
        outcome_by_id[response.request_id] = response.outcome
    stats = service.stats()
    return LoadReport(
        requests=profile.requests,
        seed=profile.seed,
        mode=profile.mode,
        virtual=virtual,
        duration_s=duration,
        accepted=stats["accepted"],
        responded=stats["responded"],
        lost=stats["lost"],
        outcomes=outcomes,
        outcome_by_id=outcome_by_id,
        latency=_quantiles(sink, "service.latency.seconds"),
        queue_wait=_quantiles(sink, "service.queue_wait.seconds"),
        counters={
            name: value
            for name, value in sink.metrics.counters().items()
            if name.startswith("service.")
        },
    )
