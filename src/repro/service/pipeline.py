"""The async solve service: admission, deadlines, priorities, drain.

:class:`SolveService` is the front door the ROADMAP's serving story
needed above :class:`~repro.engine.jobs.MatchingEngine`.  One request
flows through five cooperative stages, each separated by a deadline
check so an expired request never consumes further work:

1. **admit** — service state + priority validation, per-client token
   bucket (:mod:`repro.service.ratelimit`), then the bounded
   :class:`~repro.service.queue.AdmissionQueue` under the configured
   backpressure policy;
2. **queue** — the request waits for a worker; the ``shed_oldest``
   policy may evict it here in favour of a newer arrival;
3. **solve** — a worker charges the optional cost model (virtual-clock
   service time), then calls the engine with the request's deadline
   propagated as the engine's cooperative ``check`` hook, so expiry
   fires *between engine stages*, mid-flight;
4. **verify** — rides inside the engine call when the request asks for
   it (cached verdicts make re-verification a lookup);
5. **respond** — the caller's future resolves with a
   :class:`ServiceResponse` (or a typed :class:`~repro.exceptions.
   ServiceError` through :meth:`SolveService.submit`).

Every terminal event emits a ``service.request`` span with outcome
attributes and feeds the ``service.*`` counters and latency/queue-wait
histograms through the :class:`~repro.obs.sink.ObsSink` protocol (see
docs/SERVICE.md for the full metric taxonomy).  Graceful drain
(:meth:`SolveService.drain`) closes admission, flushes the queue, and
joins the workers — zero admitted requests are lost, the invariant the
load harness asserts after every soak.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.engine.jobs import MatchingEngine, SolveRequest, SolveResult
from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    QueueFullError,
    RateLimitedError,
    ReproError,
    ServiceClosedError,
    ServiceError,
)
from repro.obs.sink import NULL_SINK, ObsSink
from repro.service.clock import Clock, RealClock
from repro.service.queue import BACKPRESSURE_POLICIES, AdmissionQueue
from repro.service.ratelimit import RateLimiter

__all__ = [
    "DEFAULT_PRIORITIES",
    "OUTCOMES",
    "Deadline",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceResponse",
    "SolveService",
]

#: default priority classes and their weighted-dequeue weights.
DEFAULT_PRIORITIES: dict[str, int] = {"interactive": 4, "normal": 2, "batch": 1}

#: every terminal outcome a :class:`ServiceResponse` can carry
#: (``invalid`` is produced by the wire protocol, not the pipeline).
OUTCOMES = (
    "ok",
    "no_stable",
    "rejected_queue",
    "rejected_rate",
    "rejected_closed",
    "shed",
    "deadline",
    "failed",
    "invalid",
)


class Deadline:
    """One request's absolute deadline with named cooperative checks.

    ``expires_s`` is an absolute clock reading (or ``None`` for no
    deadline).  :meth:`check` is called between pipeline stages and —
    through the engine's ``check`` hook — between engine stages, so a
    request that ran out of budget stops at the next stage boundary
    instead of burning a full solve.
    """

    def __init__(
        self, clock: Clock, request_id: str, expires_s: "float | None"
    ) -> None:
        self._clock = clock
        self.request_id = request_id
        self.expires_s = expires_s

    def remaining(self) -> "float | None":
        """Seconds of budget left (negative when expired; None = no limit)."""
        if self.expires_s is None:
            return None
        return self.expires_s - self._clock.now()

    def check(self, stage: str) -> None:
        """Raise :class:`~repro.exceptions.DeadlineExceededError` if expired."""
        remaining = self.remaining()
        if remaining is not None and remaining < 0:
            raise DeadlineExceededError(
                f"request {self.request_id!r}: deadline exceeded at stage "
                f"{stage!r} ({-remaining:.6f}s over budget)",
                request_id=self.request_id,
                stage=stage,
            )

    def engine_check(self, stage: str) -> None:
        """The hook handed to the engine; prefixes engine stage names."""
        self.check(f"engine.{stage}")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`SolveService`.

    Attributes
    ----------
    queue_capacity:
        Bound on queued (admitted, not yet solving) requests.
    policy:
        Backpressure policy, one of
        :data:`~repro.service.queue.BACKPRESSURE_POLICIES`.
    workers:
        Concurrent worker coroutines consuming the queue.
    priorities:
        Priority class -> weighted-dequeue weight (also the class
        universe requests are validated against).
    rate_capacity / rate_refill_per_s:
        Per-client token bucket burst size and refill rate;
        ``rate_capacity=None`` disables rate limiting.
    default_deadline_s:
        Deadline budget applied to requests that do not carry one
        (``None`` = unlimited).
    cost_model:
        Optional synthetic service-time model: seconds to charge to the
        clock before solving (how the virtual-clock harness makes queue
        waits, deadlines, and latency distributions meaningful without
        wall time).  ``None`` charges nothing.
    """

    queue_capacity: int = 64
    policy: str = "reject"
    workers: int = 2
    priorities: Mapping[str, int] = field(
        default_factory=lambda: dict(DEFAULT_PRIORITIES)
    )
    rate_capacity: "float | None" = None
    rate_refill_per_s: float = 10.0
    default_deadline_s: "float | None" = None
    cost_model: "Callable[[ServiceRequest], float] | None" = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.policy not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"unknown backpressure policy {self.policy!r}; choose from "
                f"{BACKPRESSURE_POLICIES}"
            )
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ConfigurationError(
                f"default_deadline_s must be positive, got {self.default_deadline_s}"
            )


@dataclass(frozen=True)
class ServiceRequest:
    """One request to the service: an engine job plus serving metadata.

    ``abort_check`` is an optional extra cooperative-cancellation hook,
    called with the stage name alongside the request's own deadline
    checks (including between engine stages).  The fleet layer uses it
    to sample a shared-memory abort flag so a coordinator in another
    process can cancel work mid-solve; it never participates in
    equality or the wire format.
    """

    request_id: str
    solve: SolveRequest
    priority: str = "normal"
    client: str = "default"
    deadline_s: "float | None" = None
    abort_check: "Callable[[str], None] | None" = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ConfigurationError("request_id must be a non-empty string")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"request {self.request_id!r}: deadline_s must be positive, "
                f"got {self.deadline_s}"
            )


@dataclass(frozen=True)
class ServiceResponse:
    """Terminal state of one request, successful or not.

    ``outcome`` is one of :data:`OUTCOMES`; ``result`` is present only
    for ``ok`` / ``no_stable``.  Times are clock readings (virtual
    seconds under the load harness): ``queue_wait_s`` covers admission
    to dequeue, ``latency_s`` admission to completion.  Rejected-before-
    admission responses carry zeros.
    """

    request_id: str
    outcome: str
    priority: str
    client: str
    result: "SolveResult | None" = None
    error: "str | None" = None
    error_type: "str | None" = None
    stage: "str | None" = None
    queue_wait_s: float = 0.0
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True for a completed solve (including a no-stable verdict)."""
        return self.outcome in ("ok", "no_stable")

    def to_dict(self) -> "dict[str, Any]":
        """Plain-JSON form (the ``repro serve`` wire format)."""
        doc: dict[str, Any] = {
            "id": self.request_id,
            "outcome": self.outcome,
            "priority": self.priority,
            "client": self.client,
            "queue_wait_s": self.queue_wait_s,
            "latency_s": self.latency_s,
        }
        if self.error is not None:
            doc["error"] = self.error
            doc["error_type"] = self.error_type
        if self.stage is not None:
            doc["stage"] = self.stage
        if self.result is not None:
            doc["status"] = self.result.status
            doc["fingerprint"] = self.result.fingerprint
            doc["from_cache"] = self.result.from_cache
            doc["proposals"] = self.result.proposals
            if self.result.stable is not None:
                doc["stable"] = self.result.stable
        return doc


#: exception class -> (outcome, counter) for post-admission failures.
_ERROR_OUTCOMES: dict[type, tuple[str, str]] = {
    DeadlineExceededError: ("deadline", "service.rejected.deadline"),
    RateLimitedError: ("rejected_rate", "service.rejected.rate"),
    ServiceClosedError: ("rejected_closed", "service.rejected.closed"),
}


@dataclass
class _Entry:
    """Driver-side state for one admitted request."""

    request: ServiceRequest
    deadline: Deadline
    admitted_s: float
    future: "asyncio.Future[ServiceResponse]"
    dequeued_s: float = 0.0


class SolveService:
    """Asyncio request pipeline over a :class:`MatchingEngine`.

    Parameters
    ----------
    engine:
        The batched solve engine requests are executed on (its cache,
        retries, and telemetry all apply).  Hand the engine the same
        sink to nest ``engine.*`` spans under ``service.solve``.
    config:
        :class:`ServiceConfig` tunables.
    clock:
        Time source; defaults to :class:`~repro.service.clock.RealClock`.
        Pass a :class:`~repro.service.clock.VirtualClock` for
        deterministic soaks.
    sink:
        :class:`~repro.obs.sink.ObsSink` for the ``service.*`` metric
        and span taxonomy.

    The service is an async context manager: ``async with`` drains on
    exit, completing every admitted request.
    """

    def __init__(
        self,
        engine: MatchingEngine,
        *,
        config: "ServiceConfig | None" = None,
        clock: "Clock | None" = None,
        sink: ObsSink = NULL_SINK,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServiceConfig()
        self.clock = clock if clock is not None else RealClock()
        self.sink = sink
        self._queue: AdmissionQueue[_Entry] = AdmissionQueue(
            self.config.queue_capacity,
            self.config.policy,
            dict(self.config.priorities),
            sink=sink,
        )
        self._limiter = RateLimiter(
            self.config.rate_capacity, self.config.rate_refill_per_s, self.clock
        )
        self._workers: list[asyncio.Task[None]] = []
        self._state = "created"  # created | running | draining | closed
        self._accepted = 0
        self._responded = 0
        self._in_flight = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Lifecycle state: created / running / draining / closed."""
        return self._state

    def start(self) -> None:
        """Spawn the worker pool (idempotent; needs a running loop)."""
        if self._state in ("draining", "closed"):
            raise ServiceClosedError("service has been drained; create a new one")
        if self._state == "running":
            return
        self._state = "running"
        for index in range(self.config.workers):
            self._workers.append(
                asyncio.get_running_loop().create_task(self._worker(index))
            )

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, flush, join the workers.

        Every request admitted before the drain began is completed
        (solved or terminally rejected) — nothing is dropped.  New
        submissions raise :class:`~repro.exceptions.ServiceClosedError`.
        Idempotent.
        """
        if self._state == "closed":
            return
        self._state = "draining"
        self._queue.close()
        if self._workers:
            await asyncio.gather(*self._workers)
            self._workers = []
        self._state = "closed"

    def kill(self) -> None:
        """Simulate a crash: hard-stop without completing anything.

        The opposite contract to :meth:`drain` — workers are cancelled
        mid-flight, queued entries are abandoned, and futures never
        resolve.  Only the fleet layer calls this (crash injection for
        the lost-shard / re-route paths); the killed service's
        accounting is dead with it, and the *fleet's* accounting is
        what must stay zero-lost.
        """
        self._state = "closed"
        self._queue.close()
        for task in self._workers:
            task.cancel()
        self._workers = []

    async def __aenter__(self) -> "SolveService":
        self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.drain()

    def stats(self) -> "dict[str, int]":
        """Acceptance accounting: the zero-lost drain invariant lives here.

        ``lost`` is ``accepted - responded - in_flight`` and must be 0
        at all times; after :meth:`drain`, ``in_flight`` is 0 too.
        """
        return {
            "accepted": self._accepted,
            "responded": self._responded,
            "in_flight": self._in_flight,
            "queued": len(self._queue),
            "lost": self._accepted - self._responded - self._in_flight
            - len(self._queue),
        }

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    async def submit(self, request: ServiceRequest) -> ServiceResponse:
        """Run ``request`` through the full pipeline.

        Returns the response for completed solves; raises the typed
        :class:`~repro.exceptions.ServiceError` subclass for every
        rejection (queue full, rate limited, shed, deadline, closed).
        Use :meth:`handle` to get rejections as responses instead.
        """
        self.sink.incr("service.submitted")
        if self._state == "created":
            self.start()
        if self._state != "running":
            self.sink.incr("service.rejected.closed")
            raise ServiceClosedError(
                f"request {request.request_id!r}: service is {self._state}",
                request_id=request.request_id,
            )
        if request.priority not in self.config.priorities:
            raise ConfigurationError(
                f"request {request.request_id!r}: unknown priority "
                f"{request.priority!r}; choose from {sorted(self.config.priorities)}"
            )
        try:
            self._limiter.acquire(request.client, request.request_id)
        except ServiceError as exc:
            self._reject_pre_admission(request, exc, "service.rejected.rate")
            raise
        budget = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        admitted_s = self.clock.now()
        deadline = Deadline(
            self.clock,
            request.request_id,
            None if budget is None else admitted_s + budget,
        )
        entry = _Entry(
            request=request,
            deadline=deadline,
            admitted_s=admitted_s,
            future=asyncio.get_running_loop().create_future(),
        )
        try:
            shed = await self._queue.put(
                request.priority, entry, request_id=request.request_id
            )
        except ServiceError as exc:
            counter = (
                "service.rejected.closed"
                if isinstance(exc, ServiceClosedError)
                else "service.rejected.queue"
            )
            self._reject_pre_admission(request, exc, counter)
            raise
        self._accepted += 1
        self.sink.incr("service.admitted")
        for victim in shed:
            self._complete_error(
                victim,
                QueueFullError(
                    f"request {victim.request.request_id!r}: shed from the "
                    "admission queue by a newer arrival (shed_oldest policy)",
                    request_id=victim.request.request_id,
                    shed=True,
                ),
            )
        return await entry.future

    async def handle(self, request: ServiceRequest) -> ServiceResponse:
        """Like :meth:`submit`, but rejections become responses.

        Typed service errors (and any other :class:`~repro.exceptions.
        ReproError` from the solve) are mapped to their outcome instead
        of propagating — the form the CLI and load harness consume.
        """
        try:
            return await self.submit(request)
        except ReproError as exc:
            return self._response_for_error(request, exc)

    # ------------------------------------------------------------------
    # worker pipeline
    # ------------------------------------------------------------------

    async def _worker(self, index: int) -> None:
        while True:
            got = await self._queue.get()
            if got is None:
                return
            _, entry = got
            self._in_flight += 1
            try:
                await self._process(entry)
            finally:
                self._in_flight -= 1

    def _stage_check(self, entry: _Entry, stage: str) -> None:
        """One cooperative checkpoint: the deadline plus any abort hook."""
        entry.deadline.check(stage)
        if entry.request.abort_check is not None:
            entry.request.abort_check(stage)

    def _engine_check_for(self, entry: _Entry) -> "Callable[[str], None]":
        """The between-engine-stages hook: deadline + abort, both sampled."""
        if entry.request.abort_check is None:
            return entry.deadline.engine_check
        abort = entry.request.abort_check

        def check(stage: str) -> None:
            entry.deadline.engine_check(stage)
            abort(f"engine.{stage}")

        return check

    async def _process(self, entry: _Entry) -> None:
        request = entry.request
        entry.dequeued_s = self.clock.now()
        self.sink.observe(
            "service.queue_wait.seconds", entry.dequeued_s - entry.admitted_s
        )
        try:
            self._stage_check(entry, "dequeue")
            if self.config.cost_model is not None:
                cost = self.config.cost_model(request)
                if cost > 0:
                    await self.clock.sleep(cost)
            self._stage_check(entry, "solve")
            with self.sink.span(
                "service.solve",
                request_id=request.request_id,
                solver=request.solve.solver,
                priority=request.priority,
            ):
                # Deliberately on-loop, not run_in_executor: the solve is
                # CPU-bound and cooperative (the deadline check hook yields
                # control points), and the VirtualClock determinism gate
                # (`repro load --check`) requires a single-threaded loop —
                # an executor future would leave run_virtual() with
                # pending()==0 and no ready callbacks, raising
                # SimulationError.  See repro/service/clock.py.
                result = self.engine.submit(  # statan: ignore[async-safety] -- virtual-clock determinism requires the solve inline; see comment above
                    request.solve, check=self._engine_check_for(entry)
                )
            self._stage_check(entry, "respond")
        except ReproError as exc:
            self._complete_error(entry, exc)
            return
        outcome = "ok" if result.ok else "no_stable"
        finished_s = self.clock.now()
        response = ServiceResponse(
            request_id=request.request_id,
            outcome=outcome,
            priority=request.priority,
            client=request.client,
            result=result,
            queue_wait_s=entry.dequeued_s - entry.admitted_s,
            latency_s=finished_s - entry.admitted_s,
        )
        self.sink.incr("service.completed")
        self._finish(entry, response)
        if not entry.future.done():
            entry.future.set_result(response)

    # ------------------------------------------------------------------
    # terminal accounting
    # ------------------------------------------------------------------

    def _outcome_for(self, exc: ReproError) -> "tuple[str, str]":
        if isinstance(exc, QueueFullError):
            return ("shed", "service.shed") if exc.shed else (
                "rejected_queue",
                "service.rejected.queue",
            )
        for klass, mapped in _ERROR_OUTCOMES.items():
            if isinstance(exc, klass):
                return mapped
        return "failed", "service.failed"

    def _response_for_error(
        self, request: ServiceRequest, exc: ReproError
    ) -> ServiceResponse:
        recorded = getattr(exc, "service_response", None)
        if isinstance(recorded, ServiceResponse):
            return recorded  # post-admission failure: keep its timing
        outcome, _ = self._outcome_for(exc)
        if outcome == "failed" and isinstance(
            exc, ConfigurationError
        ):  # bad request shape, not a solver loss
            outcome = "invalid"
        return ServiceResponse(
            request_id=request.request_id,
            outcome=outcome,
            priority=request.priority,
            client=request.client,
            error=str(exc),
            error_type=type(exc).__name__,
            stage=getattr(exc, "stage", None) or None,
        )

    def _reject_pre_admission(
        self, request: ServiceRequest, exc: ServiceError, counter: str
    ) -> None:
        self.sink.incr(counter)
        outcome, _ = self._outcome_for(exc)
        with self.sink.span(
            "service.request",
            request_id=request.request_id,
            priority=request.priority,
            client=request.client,
            outcome=outcome,
            admitted=False,
        ):
            pass

    def _complete_error(self, entry: _Entry, exc: ReproError) -> None:
        request = entry.request
        outcome, counter = self._outcome_for(exc)
        self.sink.incr(counter)
        response = ServiceResponse(
            request_id=request.request_id,
            outcome=outcome,
            priority=request.priority,
            client=request.client,
            error=str(exc),
            error_type=type(exc).__name__,
            stage=getattr(exc, "stage", None) or None,
            queue_wait_s=max(0.0, entry.dequeued_s - entry.admitted_s),
            latency_s=self.clock.now() - entry.admitted_s,
        )
        self._finish(entry, response)
        # let handle() recover the full accounting (queue wait, latency)
        # instead of synthesizing a zeroed response from the bare error
        exc.service_response = response  # type: ignore[attr-defined]
        if not entry.future.done():
            entry.future.set_exception(exc)

    def _finish(self, entry: _Entry, response: ServiceResponse) -> None:
        """Shared terminal bookkeeping for every admitted request."""
        self._responded += 1
        self.sink.observe("service.latency.seconds", response.latency_s)
        with self.sink.span(
            "service.request",
            request_id=response.request_id,
            priority=response.priority,
            client=response.client,
            outcome=response.outcome,
            admitted=True,
        ):
            pass
