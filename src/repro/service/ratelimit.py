"""Per-client token-bucket rate limiting for the solve service.

Each client gets an independent bucket of ``capacity`` tokens refilled
continuously at ``refill_per_s``.  Admission costs one token; an empty
bucket rejects with :class:`~repro.exceptions.RateLimitedError` carrying
a ``retry_after_s`` estimate.  The classic shape: bursts up to
``capacity`` are absorbed instantly, sustained throughput converges to
``refill_per_s`` requests/second per client.

Buckets read time through the service :class:`~repro.service.clock.
Clock`, so limiting is exact and reproducible under the virtual clock —
the burst tests assert token-by-token behaviour with no sleeps or
flakiness.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError, RateLimitedError
from repro.service.clock import Clock

__all__ = ["TokenBucket", "RateLimiter"]


class TokenBucket:
    """One client's bucket: continuous refill, integer-cost acquire."""

    def __init__(self, capacity: float, refill_per_s: float, clock: Clock) -> None:
        if capacity <= 0 or refill_per_s <= 0:
            raise ConfigurationError(
                f"token bucket needs positive capacity and refill rate, got "
                f"{capacity}/{refill_per_s}"
            )
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._last_refill = clock.now()

    def _refill(self) -> None:
        now = self._clock.now()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.refill_per_s)
        self._last_refill = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (after refill accounting)."""
        self._refill()
        return self._tokens

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; returns success."""
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will have refilled (>= 0)."""
        self._refill()
        deficit = amount - self._tokens
        return max(0.0, deficit / self.refill_per_s)


class RateLimiter:
    """Lazy per-client registry of :class:`TokenBucket` instances.

    ``capacity=None`` disables limiting entirely (every acquire
    succeeds), which is the service default — limiting is opt-in via
    :class:`~repro.service.pipeline.ServiceConfig`.
    """

    def __init__(
        self,
        capacity: "float | None",
        refill_per_s: float,
        clock: Clock,
    ) -> None:
        if capacity is not None and (capacity <= 0 or refill_per_s <= 0):
            raise ConfigurationError(
                f"rate limiter needs positive capacity and refill rate, got "
                f"{capacity}/{refill_per_s}"
            )
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        """Whether limiting is active (a capacity was configured)."""
        return self.capacity is not None

    def bucket(self, client: str) -> "TokenBucket | None":
        """The bucket for ``client`` (created on first use), or ``None``."""
        if self.capacity is None:
            return None
        found = self._buckets.get(client)
        if found is None:
            found = self._buckets[client] = TokenBucket(
                self.capacity, self.refill_per_s, self._clock
            )
        return found

    def acquire(self, client: str, request_id: str) -> None:
        """Charge one token to ``client`` or reject the request.

        Raises :class:`~repro.exceptions.RateLimitedError` (with the
        bucket's ``retry_after_s`` estimate) when the bucket is empty.
        """
        bucket = self.bucket(client)
        if bucket is None:
            return
        if not bucket.try_acquire():
            retry_after = bucket.retry_after()
            raise RateLimitedError(
                f"request {request_id!r}: client {client!r} is rate-limited; "
                f"retry in {retry_after:.3f}s",
                request_id=request_id,
                retry_after_s=retry_after,
            )
