"""Bounded admission queue: priority classes, weighted dequeue, backpressure.

The queue is the service's front door.  Three configurable backpressure
policies decide what happens when a ``put`` finds it at capacity:

* ``reject`` — raise :class:`~repro.exceptions.QueueFullError` to the
  submitter (fail fast; the client can retry with backoff);
* ``shed_oldest`` — evict the globally oldest queued entry to make
  room and hand it back to the caller, who must complete it with a
  ``shed`` rejection (newest-wins, bounded staleness);
* ``block`` — suspend the submitter until a worker frees a slot
  (classic backpressure; propagates queue delay to the producer).

Dequeue order is *smooth weighted round-robin* over the priority
classes (the nginx algorithm): each pick raises every non-empty class's
credit by its weight, takes the class with the highest credit (ties
break by registration order), and charges the winner the total active
weight.  The schedule is deterministic and work-conserving, and a
weight-w class gets w/(sum of active weights) of the dequeues under
saturation — starvation-free for every positive weight.

The queue is asyncio-native and single-loop; depth changes are pushed
to the :class:`~repro.obs.sink.ObsSink` as the ``service.queue.depth``
gauge plus per-policy counters.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from typing import Generic, TypeVar

from repro.exceptions import ConfigurationError, QueueFullError, ServiceClosedError
from repro.obs.sink import NULL_SINK, ObsSink

__all__ = ["BACKPRESSURE_POLICIES", "AdmissionQueue"]

#: the admission-time overload behaviours ``AdmissionQueue`` supports.
BACKPRESSURE_POLICIES = ("reject", "shed_oldest", "block")

T = TypeVar("T")


class AdmissionQueue(Generic[T]):
    """Bounded multi-class queue with weighted dequeue and shed support.

    Parameters
    ----------
    capacity:
        Maximum queued entries across all classes.
    policy:
        One of :data:`BACKPRESSURE_POLICIES`.
    weights:
        Priority class name -> positive integer dequeue weight.  The
        mapping also fixes the class universe: a ``put`` with an
        unknown class raises :class:`~repro.exceptions.ConfigurationError`.
    sink:
        Observability sink for the depth gauge and shed counter.
    """

    def __init__(
        self,
        capacity: int,
        policy: str,
        weights: "dict[str, int]",
        sink: ObsSink = NULL_SINK,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"queue capacity must be >= 1, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"unknown backpressure policy {policy!r}; choose from "
                f"{BACKPRESSURE_POLICIES}"
            )
        if not weights:
            raise ConfigurationError("at least one priority class is required")
        for name, weight in weights.items():
            if weight < 1:
                raise ConfigurationError(
                    f"priority class {name!r} needs a positive weight, got {weight}"
                )
        self.capacity = capacity
        self.policy = policy
        self._weights = dict(weights)
        self._credits = {name: 0 for name in weights}
        self._queues: dict[str, deque[tuple[int, T]]] = {
            name: deque() for name in weights
        }
        self._seq = itertools.count()
        self._size = 0
        self._closed = False
        self._sink = sink
        self._item_waiters: deque[asyncio.Future[None]] = deque()
        self._space_waiters: deque[asyncio.Future[None]] = deque()

    def __len__(self) -> int:
        return self._size

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _gauge_depth(self) -> None:
        self._sink.gauge("service.queue.depth", float(self._size))

    def _wake_one(self, waiters: "deque[asyncio.Future[None]]") -> None:
        while waiters:
            future = waiters.popleft()
            if not future.done():
                future.set_result(None)
                return

    def _wake_all(self, waiters: "deque[asyncio.Future[None]]") -> None:
        while waiters:
            future = waiters.popleft()
            if not future.done():
                future.set_result(None)

    def _shed_oldest(self) -> T:
        """Evict and return the globally oldest queued entry."""
        oldest_class = min(
            (name for name in self._queues if self._queues[name]),
            key=lambda name: self._queues[name][0][0],
        )
        _, item = self._queues[oldest_class].popleft()
        self._size -= 1
        self._sink.incr("service.queue.shed")
        return item

    async def put(self, priority: str, item: T, *, request_id: str = "") -> "list[T]":
        """Enqueue ``item`` under ``priority``; returns any shed entries.

        Applies the configured backpressure policy when the queue is at
        capacity.  ``reject`` raises :class:`~repro.exceptions.
        QueueFullError`; ``shed_oldest`` returns the evicted entries so
        the caller can complete them with a shed rejection; ``block``
        suspends until a slot frees (re-checking closure on wakeup).
        """
        if priority not in self._queues:
            raise ConfigurationError(
                f"unknown priority class {priority!r}; choose from "
                f"{sorted(self._queues)}"
            )
        shed: list[T] = []
        while True:
            if self._closed:
                raise ServiceClosedError(
                    f"request {request_id!r}: queue is closed",
                    request_id=request_id,
                )
            if self._size < self.capacity:
                break
            if self.policy == "reject":
                raise QueueFullError(
                    f"request {request_id!r}: admission queue full "
                    f"({self._size}/{self.capacity})",
                    request_id=request_id,
                )
            if self.policy == "shed_oldest":
                shed.append(self._shed_oldest())
                continue
            future: asyncio.Future[None] = asyncio.get_running_loop().create_future()
            self._space_waiters.append(future)
            await future
        self._queues[priority].append((next(self._seq), item))
        self._size += 1
        self._gauge_depth()
        self._wake_one(self._item_waiters)
        return shed

    def _pick_class(self) -> str:
        """Smooth weighted round-robin over the non-empty classes."""
        active = [name for name in self._queues if self._queues[name]]
        total = sum(self._weights[name] for name in active)
        best = active[0]
        for name in active:
            self._credits[name] += self._weights[name]
            if self._credits[name] > self._credits[best]:
                best = name
        self._credits[best] -= total
        return best

    async def get(self) -> "tuple[str, T] | None":
        """Dequeue the next entry, or ``None`` once closed and empty.

        Suspends while the queue is empty.  The returned tuple is
        ``(priority_class, item)``.
        """
        while self._size == 0:
            if self._closed:
                return None
            future: asyncio.Future[None] = asyncio.get_running_loop().create_future()
            self._item_waiters.append(future)
            await future
        chosen = self._pick_class()
        _, item = self._queues[chosen].popleft()
        self._size -= 1
        self._gauge_depth()
        self._wake_one(self._space_waiters)
        return chosen, item

    def close(self) -> None:
        """Stop accepting puts; queued entries remain drainable.

        Blocked putters and idle getters are woken: putters observe the
        closure and raise :class:`~repro.exceptions.ServiceClosedError`,
        getters drain the remainder and then receive ``None``.
        """
        self._closed = True
        self._wake_all(self._space_waiters)
        self._wake_all(self._item_waiters)
