"""Engine telemetry: a thin facade over :class:`repro.obs.MetricsRegistry`.

Two granularities feed one snapshot:

* **engine-wide counters** — monotonically increasing ints
  (``jobs_submitted``, ``cache_hits``, ``solver_invocations``,
  ``retries``, ``proposals``, ``rotations``, ...) incremented by the
  :class:`~repro.engine.jobs.MatchingEngine` as it works;
* **stage timers** — cumulative wall-clock per pipeline stage
  (``fingerprint`` / ``cache`` / ``solve`` / ``verify``), recorded via
  the :meth:`EngineTelemetry.timer` context manager.

Since the :mod:`repro.obs` unification, the storage behind both is a
:class:`~repro.obs.metrics.MetricsRegistry` (exposed as
:attr:`EngineTelemetry.registry`): counters live in the registry's
counter table, and each stage timer is a ``stage.<name>.seconds``
histogram on :data:`~repro.obs.metrics.DEFAULT_TIME_EDGES` (``calls`` is
the histogram's sample count, ``seconds`` its sum).  The classic
``snapshot()`` / ``to_json()`` schema documented in docs/ENGINE.md —
``{"counters": ..., "stages": {stage: {"seconds", "calls"}}}`` — is
preserved exactly; pass the registry itself to solvers (it is an
:class:`~repro.obs.sink.ObsSink`) to collect solver-side metrics in the
same place and export them via ``registry.snapshot()``.

:func:`matching_quality` bridges results into :mod:`repro.analysis.
metrics`: per-job happiness metrics (egalitarian cost, regret, spread)
computed from the solved matching, so batch reports can aggregate
solution *quality* next to serving *throughput*.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.analysis.metrics import kary_costs
from repro.obs.metrics import DEFAULT_TIME_EDGES, MetricsRegistry

if TYPE_CHECKING:  # annotation-only to keep the runtime import surface small
    from repro.core.kary_matching import KAryMatching

__all__ = ["EngineTelemetry", "matching_quality"]

#: registry histogram name for a pipeline stage's durations.
_STAGE_PREFIX = "stage."
_STAGE_SUFFIX = ".seconds"


def matching_quality(matching: "KAryMatching") -> dict[str, object]:
    """Per-job quality metrics (via :mod:`repro.analysis.metrics`).

    Returns a plain-JSON dict so it can ride inside cached payloads:
    ``{"egalitarian": int, "regret": int, "spread": int,
    "gender_costs": [int, ...]}``.
    """
    costs = kary_costs(matching)
    return {
        "egalitarian": costs.egalitarian,
        "regret": costs.regret,
        "spread": costs.spread,
        "gender_costs": list(costs.gender_costs),
    }


class EngineTelemetry:
    """Mutable counter/timer block owned by one engine (or one test).

    Attributes
    ----------
    registry:
        The backing :class:`~repro.obs.metrics.MetricsRegistry`.  Hand
        it to instrumented solvers as their ``sink`` to fold solver
        metrics (``gs.*``, ``irving.*``, ``binding.*``) into the same
        store; its full snapshot (histograms included) is available via
        ``registry.snapshot()``.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    @staticmethod
    def _stage_metric(stage: str) -> str:
        return f"{_STAGE_PREFIX}{stage}{_STAGE_SUFFIX}"

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self.registry.incr(name, amount)

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never touched)."""
        return self.registry.count(name)

    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Accumulate the wall-clock of the ``with`` body under ``stage``."""
        hist = self.registry.register_histogram(
            self._stage_metric(stage), DEFAULT_TIME_EDGES
        )
        start = time.perf_counter()
        try:
            yield
        finally:
            hist.observe(time.perf_counter() - start)

    def stage_seconds(self, stage: str) -> float:
        """Cumulative seconds recorded for ``stage`` (0.0 when absent)."""
        hist = self.registry.histogram(self._stage_metric(stage))
        return hist.sum if hist is not None else 0.0

    def merge(self, other: "EngineTelemetry") -> None:
        """Fold ``other``'s counters and timers into this block."""
        self.registry.merge(other.registry)

    def snapshot(self) -> dict[str, object]:
        """JSON-safe export: counters plus per-stage seconds and calls.

        The schema predates the metrics unification and is kept stable:
        ``{"counters": {...}, "stages": {stage: {"seconds", "calls"}}}``.
        Stage entries are derived from the registry's
        ``stage.<name>.seconds`` histograms.
        """
        reg = self.registry.snapshot()
        stages: dict[str, dict[str, object]] = {}
        histograms = reg["histograms"]
        assert isinstance(histograms, dict)
        for name in histograms:
            if name.startswith(_STAGE_PREFIX) and name.endswith(_STAGE_SUFFIX):
                stage = name[len(_STAGE_PREFIX) : -len(_STAGE_SUFFIX)]
                hist = histograms[name]
                stages[stage] = {"seconds": hist["sum"], "calls": hist["count"]}
        return {"counters": reg["counters"], "stages": stages}

    def to_json(self, **dump_kwargs: object) -> str:
        """Serialize :meth:`snapshot` to a JSON string."""
        return json.dumps(self.snapshot(), **dump_kwargs)  # type: ignore[arg-type]
