"""Engine telemetry: counters, stage timers, JSON export.

Two granularities feed one snapshot:

* **engine-wide counters** — monotonically increasing ints
  (``jobs_submitted``, ``cache_hits``, ``solver_invocations``,
  ``retries``, ``proposals``, ``rotations``, ...) incremented by the
  :class:`~repro.engine.jobs.MatchingEngine` as it works;
* **stage timers** — cumulative wall-clock per pipeline stage
  (``fingerprint`` / ``cache`` / ``solve`` / ``verify``), recorded via
  the :meth:`EngineTelemetry.timer` context manager.

:func:`matching_quality` bridges results into :mod:`repro.analysis.
metrics`: per-job happiness metrics (egalitarian cost, regret, spread)
computed from the solved matching, so batch reports can aggregate
solution *quality* next to serving *throughput*.  ``snapshot()`` /
``to_json()`` is the export schema documented in docs/ENGINE.md.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.analysis.metrics import kary_costs

if TYPE_CHECKING:  # annotation-only to keep the runtime import surface small
    from repro.core.kary_matching import KAryMatching

__all__ = ["EngineTelemetry", "matching_quality"]


def matching_quality(matching: "KAryMatching") -> dict[str, object]:
    """Per-job quality metrics (via :mod:`repro.analysis.metrics`).

    Returns a plain-JSON dict so it can ride inside cached payloads:
    ``{"egalitarian": int, "regret": int, "spread": int,
    "gender_costs": [int, ...]}``.
    """
    costs = kary_costs(matching)
    return {
        "egalitarian": costs.egalitarian,
        "regret": costs.regret,
        "spread": costs.spread,
        "gender_costs": list(costs.gender_costs),
    }


class EngineTelemetry:
    """Mutable counter/timer block owned by one engine (or one test)."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._stage_seconds: dict[str, float] = {}
        self._stage_calls: dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never touched)."""
        return self._counters.get(name, 0)

    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Accumulate the wall-clock of the ``with`` body under ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stage_seconds[stage] = self._stage_seconds.get(stage, 0.0) + elapsed
            self._stage_calls[stage] = self._stage_calls.get(stage, 0) + 1

    def stage_seconds(self, stage: str) -> float:
        """Cumulative seconds recorded for ``stage`` (0.0 when absent)."""
        return self._stage_seconds.get(stage, 0.0)

    def merge(self, other: "EngineTelemetry") -> None:
        """Fold ``other``'s counters and timers into this block."""
        for name, value in other._counters.items():
            self.incr(name, value)
        for stage, secs in other._stage_seconds.items():
            self._stage_seconds[stage] = self._stage_seconds.get(stage, 0.0) + secs
            self._stage_calls[stage] = self._stage_calls.get(stage, 0) + other._stage_calls.get(stage, 0)

    def snapshot(self) -> dict[str, object]:
        """JSON-safe export: counters plus per-stage seconds and calls."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "stages": {
                stage: {
                    "seconds": self._stage_seconds[stage],
                    "calls": self._stage_calls.get(stage, 0),
                }
                for stage in sorted(self._stage_seconds)
            },
        }

    def to_json(self, **dump_kwargs: object) -> str:
        """Serialize :meth:`snapshot` to a JSON string."""
        return json.dumps(self.snapshot(), **dump_kwargs)  # type: ignore[arg-type]
