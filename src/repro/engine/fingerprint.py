"""Content-addressed fingerprints for solve requests.

The serving layer's cache and in-flight dedup both key on a
*fingerprint*: a SHA-256 digest over the canonical JSON form of
(serialized instance, solver kind, binding-tree spec, seed / solver
config).  Two properties matter and are tested:

* **cross-process stability** — the digest is computed from
  :func:`repro.model.serialize.instance_to_dict` output rendered with
  sorted keys and fixed separators, so the same instance hashes
  identically in every process (no reliance on ``hash()``, which is
  randomized per interpreter);
* **no false sharing** — structurally different instances (e.g.
  permuted-but-equal-looking preference lists) and different solver
  specs produce distinct keys, because the full preference content and
  the whole spec participate in the digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.model.instance import KPartiteInstance
from repro.model.serialize import instance_to_dict

__all__ = [
    "FINGERPRINT_SCHEMA",
    "canonical_json",
    "instance_digest",
    "solve_fingerprint",
]

#: bumped whenever the payload layout changes, so stale on-disk cache
#: entries from an older engine version can never be misread as current.
FINGERPRINT_SCHEMA = 1


def canonical_json(doc: Any) -> str:
    """Render ``doc`` as canonical JSON (sorted keys, fixed separators).

    The canonical form is what gets hashed; it is also what the on-disk
    cache stores, so cache files are diffable and stable across runs.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def _digest(doc: Any) -> str:
    return hashlib.sha256(canonical_json(doc).encode("ascii")).hexdigest()


def instance_digest(instance: KPartiteInstance) -> str:
    """SHA-256 over the canonical serialized form of ``instance`` alone.

    Useful for grouping telemetry by input regardless of solver; the
    cache key proper is :func:`solve_fingerprint`, which also binds the
    solver spec.
    """
    return _digest({"schema": FINGERPRINT_SCHEMA, "instance": instance_to_dict(instance)})


def solve_fingerprint(
    instance: KPartiteInstance,
    solver: str,
    spec: Mapping[str, object] | None = None,
    *,
    instance_key: str | None = None,
) -> str:
    """Cache key for running ``solver`` with ``spec`` on ``instance``.

    ``spec`` carries everything that can change the *result*: the
    binding-tree spec and seed, the Gale-Shapley engine, the
    linearization strategy, ...  Presentation-only knobs (labels,
    timeouts, retry budgets) must stay out — they do not alter the
    answer, so requests differing only in them should share work.

    The key is a digest over (:func:`instance_digest`, solver, spec);
    pass a precomputed ``instance_key`` to amortize the instance
    serialization across many requests for the same instance (the
    engine does this per batch).
    """
    if instance_key is None:
        instance_key = instance_digest(instance)
    payload = {
        "schema": FINGERPRINT_SCHEMA,
        "instance_digest": instance_key,
        "solver": solver,
        "spec": dict(spec or {}),
    }
    return _digest(payload)
