"""Serving layer: batched solving with cache, retries, and telemetry.

The paper's solvers answer one instance at a time; production traffic
(the ROADMAP's north star) arrives as *batches* dominated by small,
heavily repeated instances.  This package is the layer in between:

* :mod:`repro.engine.fingerprint` — content-addressed keys over
  (serialized instance, solver kind, tree spec, seed/config);
* :mod:`repro.engine.cache` — LRU result cache with an optional JSON
  on-disk tier and hit/miss/eviction counters;
* :mod:`repro.engine.jobs` — ``SolveRequest`` / ``SolveResult`` and the
  :class:`MatchingEngine` (``submit`` / ``solve_many``): in-flight
  dedup, dispatch across the :mod:`repro.parallel.executor` backends,
  per-job timeout, bounded retry-with-backoff;
* :mod:`repro.engine.telemetry` — engine-wide counters and stage timers
  with JSON export, bridging into :mod:`repro.analysis.metrics`.

Architecture note: nothing inside the library imports this package —
only the CLI (``repro solve-batch``) and user code sit above it (see
``repro.statan.layering.LAYERS``).
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.fingerprint import (
    FINGERPRINT_SCHEMA,
    canonical_json,
    instance_digest,
    solve_fingerprint,
)
from repro.engine.jobs import (
    SOLVERS,
    MatchingEngine,
    RetryPolicy,
    SolveRequest,
    SolveResult,
)
from repro.engine.telemetry import EngineTelemetry, matching_quality

# re-exported so layers above the engine (service, fleet, CLI) can
# validate backend names without importing repro.parallel directly —
# the layering table routes everything serving-side through here.
from repro.parallel.executor import BACKENDS, validate_backend

__all__ = [
    "BACKENDS",
    "validate_backend",
    "CacheStats",
    "ResultCache",
    "FINGERPRINT_SCHEMA",
    "canonical_json",
    "instance_digest",
    "solve_fingerprint",
    "SOLVERS",
    "MatchingEngine",
    "RetryPolicy",
    "SolveRequest",
    "SolveResult",
    "EngineTelemetry",
    "matching_quality",
]
