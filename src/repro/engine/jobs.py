"""The batched solve service: requests, results, and the engine.

``MatchingEngine`` is the serving layer between callers and the
solvers.  One ``solve_many`` call walks a fixed pipeline, each stage
timed in telemetry:

1. **fingerprint** — every request gets a content-addressed key
   (:mod:`repro.engine.fingerprint`);
2. **cache** — keys are looked up in the :class:`~repro.engine.cache.
   ResultCache`; hits skip solving entirely;
3. **dedup** — identical in-flight requests collapse to one solve whose
   payload fans back out to every duplicate position;
4. **solve** — the surviving unique jobs dispatch across the
   :mod:`repro.parallel.executor` backends (``process`` / ``thread`` /
   ``serial``) with per-job timeout and bounded retry-with-backoff on
   :class:`~repro.exceptions.TransientWorkerError`;
5. **verify** — on request, the driver re-checks stability of the
   returned matching with the :mod:`repro.core.stability` oracles.

Worker payloads are plain-JSON dicts (never live objects) so they can
ride through process pools, the cache, and the on-disk store unchanged.
Failures injectable for tests: pass ``fault_hook=...`` to the engine
and raise :class:`TransientWorkerError` from it to simulate worker
loss on chosen attempts.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.binding_tree import BindingTree
from repro.core.iterative_binding import iterative_binding
from repro.core.priority_binding import priority_binding
from repro.core.stability import find_blocking_family
from repro.engine.arena import (
    plan_stacked_pool,
    solve_stacked_chunk,
    solve_stacked_serial,
)
from repro.engine.cache import ResultCache
from repro.engine.fingerprint import instance_digest, solve_fingerprint
from repro.engine.telemetry import EngineTelemetry, matching_quality
from repro.exceptions import (
    ConfigurationError,
    NoStableMatchingError,
    TransientWorkerError,
)
from repro.model.instance import KPartiteInstance
from repro.model.members import Member
from repro.model.serialize import (
    instance_from_json,
    instance_to_json,
    matching_from_dict,
    matching_to_dict,
)
from repro.obs.sink import NULL_SINK, ObsSink
from repro.parallel.executor import validate_backend

__all__ = [
    "SOLVERS",
    "RetryPolicy",
    "SolveRequest",
    "SolveResult",
    "MatchingEngine",
]

#: solver kinds the engine can dispatch.
SOLVERS = ("kary", "priority", "binary")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient worker failures.

    ``max_attempts`` counts *total* tries (so 1 disables retrying);
    the delay before retry number i (1-based) is
    ``backoff_seconds * backoff_factor ** (i - 1)``.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0 or self.backoff_factor < 1:
            raise ConfigurationError(
                "backoff_seconds must be >= 0 and backoff_factor >= 1, got "
                f"{self.backoff_seconds}/{self.backoff_factor}"
            )

    def delay(self, failure_index: int) -> float:
        """Seconds to wait after the ``failure_index``-th failure (0-based)."""
        return self.backoff_seconds * self.backoff_factor**failure_index


@dataclass(frozen=True)
class SolveRequest:
    """One solve job: an instance plus everything that shapes the answer.

    Result-shaping fields (``solver``, ``tree``, ``tree_seed``,
    ``gs_engine``, ``linearization``) participate in the fingerprint;
    presentation fields (``verify``, ``timeout``, ``label``) do not, so
    requests differing only in them share cache entries.
    """

    instance: KPartiteInstance
    solver: str = "kary"
    tree: str = "chain"
    tree_seed: int | None = None
    gs_engine: str = "textbook"
    linearization: str = "auto"
    verify: bool = False
    timeout: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.solver not in SOLVERS:
            raise ConfigurationError(
                f"unknown solver {self.solver!r}; choose from {SOLVERS}"
            )
        if self.solver == "kary" and self.tree == "random" and self.tree_seed is None:
            raise ConfigurationError(
                "tree='random' needs an explicit tree_seed: an unseeded tree "
                "makes the result non-deterministic and the cache key a lie"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {self.timeout}")

    def spec(self) -> dict[str, Any]:
        """The JSON-safe solver spec hashed into the fingerprint."""
        if self.solver == "kary":
            return {
                "tree": self.tree,
                "tree_seed": self.tree_seed,
                "gs_engine": self.gs_engine,
            }
        if self.solver == "priority":
            return {"gs_engine": self.gs_engine}
        return {"linearization": self.linearization}

    def fingerprint(self) -> str:
        """Content-addressed cache key for this request."""
        return solve_fingerprint(self.instance, self.solver, self.spec())


@dataclass(frozen=True)
class SolveResult:
    """Outcome of one request, with serving-path provenance.

    ``payload`` is the worker's plain-JSON dict (also what the cache
    stores); the convenience properties read through it.  ``from_cache``
    / ``deduped`` say how the answer was obtained: a fresh solve has
    both False, a duplicate position in the same batch has ``deduped``
    True, a cache hit has ``from_cache`` True.
    """

    fingerprint: str
    solver: str
    status: str
    payload: Mapping[str, Any]
    from_cache: bool
    deduped: bool
    attempts: int
    seconds: float
    stable: bool | None = None
    label: str = ""

    @property
    def ok(self) -> bool:
        """True when a matching was produced (vs. proven non-existent)."""
        return self.status == "ok"

    @property
    def matching(self) -> Mapping[str, Any] | None:
        """Serialized matching (schema depends on the solver), if any."""
        value = self.payload.get("matching")
        return value if isinstance(value, Mapping) else None

    @property
    def proposals(self) -> int:
        """Proposals issued by the underlying solver run."""
        return int(self.payload.get("proposals", 0))

    @property
    def rotations(self) -> int:
        """Rotations eliminated (binary solves; 0 for k-ary)."""
        return int(self.payload.get("rotations", 0))

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form for reports and the CLI."""
        return {
            "fingerprint": self.fingerprint,
            "solver": self.solver,
            "status": self.status,
            "from_cache": self.from_cache,
            "deduped": self.deduped,
            "attempts": self.attempts,
            "seconds": self.seconds,
            "stable": self.stable,
            "label": self.label,
            "payload": dict(self.payload),
        }


def _solve_worker(
    task: tuple[str, str, dict[str, Any]], sink: "ObsSink | None" = None
) -> dict[str, Any]:
    """Top-level worker (must be picklable): solve one serialized job.

    ``sink`` is only threaded in by the serial backend (pool dispatch
    keeps the single-argument picklable form), so solver spans nest
    under the engine's ``engine.solve`` span when solving in-process.
    """
    solver, instance_json, spec = task
    inst = instance_from_json(instance_json)
    if solver in ("kary", "priority"):
        if solver == "kary":
            tree = BindingTree.from_spec(inst.k, spec["tree"], spec.get("tree_seed"))
            res = iterative_binding(inst, tree, engine=spec["gs_engine"], sink=sink)
        else:
            res = priority_binding(inst, engine=spec["gs_engine"], sink=sink)
        return {
            "status": "ok",
            "solver": solver,
            "matching": matching_to_dict(res.matching),
            "proposals": res.total_proposals,
            "rotations": 0,
            "tree_edges": [list(e) for e in res.tree.edges],
            "quality": matching_quality(res.matching),
        }
    if solver == "binary":
        from repro.kpartite.existence import solve_binary  # lazy: kpartite sits above engine

        try:
            res_b = solve_binary(inst, linearization=spec["linearization"], sink=sink)
        except NoStableMatchingError as exc:
            return {
                "status": "no_stable",
                "solver": solver,
                "witness": str(exc),
                "proposals": 0,
                "rotations": 0,
            }
        return {
            "status": "ok",
            "solver": solver,
            "matching": {
                "pairs": [
                    [[a.gender, a.index], [b.gender, b.index]] for a, b in res_b.pairs
                ]
            },
            "proposals": res_b.roommates.proposals,
            "rotations": len(res_b.roommates.rotations),
        }
    raise ConfigurationError(f"unknown solver {solver!r}; choose from {SOLVERS}")


@dataclass
class _Job:
    """Driver-side state for one *unique* fingerprint in a batch."""

    fingerprint: str
    request: SolveRequest
    positions: list[int] = field(default_factory=list)
    payload: dict[str, Any] | None = None
    from_cache: bool = False
    attempts: int = 0
    seconds: float = 0.0


class MatchingEngine:
    """Batched solve service with cache, dedup, retries, and telemetry.

    Parameters
    ----------
    backend:
        Executor backend for the solve stage — one of
        :data:`repro.parallel.executor.BACKENDS`.  ``serial`` solves
        in-process (per-job timeouts are then not enforceable and are
        ignored).
    max_workers:
        Pool size for ``process`` / ``thread`` backends.
    cache:
        Result cache; defaults to a fresh in-memory LRU.  Pass a
        disk-backed :class:`~repro.engine.cache.ResultCache` to persist
        results across engine lifetimes.
    retry:
        :class:`RetryPolicy` for transient failures.
    telemetry:
        Shared :class:`~repro.engine.telemetry.EngineTelemetry` block;
        defaults to a private one exposed as ``engine.telemetry``.
    sink:
        Optional :class:`~repro.obs.sink.ObsSink`.  Each ``solve_many``
        call becomes an ``engine.batch`` span with one child per
        pipeline stage (``engine.fingerprint`` / ``engine.cache`` /
        ``engine.solve`` / ``engine.verify``); the cache span carries
        per-tier hit counts (``memory_hits`` / ``disk_hits`` /
        ``misses``).  With the serial backend the sink is also threaded
        into the solve worker, so solver spans (``binding.*``,
        ``irving.*``, ``gs.*``) nest under ``engine.solve``; pool
        backends keep the worker sink-free to stay picklable.
    fault_hook:
        Test seam: called as ``fault_hook(request, attempt)`` before
        each dispatch; raising :class:`TransientWorkerError` there makes
        that attempt fail exactly like a lost worker.
    sleep:
        Injection point for the backoff sleep (tests pass a recorder).

    The engine is a context manager; ``close()`` shuts down any owned
    pool.
    """

    def __init__(
        self,
        *,
        backend: str = "serial",
        max_workers: int | None = None,
        cache: ResultCache | None = None,
        retry: RetryPolicy | None = None,
        telemetry: EngineTelemetry | None = None,
        sink: "ObsSink | None" = None,
        fault_hook: Callable[[SolveRequest, int], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        timer: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.backend = validate_backend(backend)
        self.max_workers = max_workers
        self.cache = cache if cache is not None else ResultCache()
        self.retry = retry if retry is not None else RetryPolicy()
        self.telemetry = telemetry if telemetry is not None else EngineTelemetry()
        self.sink = sink
        self._fault_hook = fault_hook
        self._sleep = sleep
        # injectable per-job timer: tests and record/replay substitute a
        # deterministic source (clock-discipline bans raw perf_counter
        # calls here; the default *reference* is the sanctioned pattern)
        self._timer = timer
        self._pool: Executor | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the owned worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "MatchingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_pool(self) -> Executor | None:
        if self.backend == "serial":
            return None
        if self._pool is None:
            if self.backend == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _reset_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _pool_slots(self) -> int:
        """The pool's worker count — the stacked-chunk fan-out target.

        Mirrors the executors' own defaults when ``max_workers`` is
        unset (process pools default to the CPU count, thread pools to
        ``min(32, cpus + 4)``), so chunk planning matches the real
        parallelism instead of under- or over-splitting.
        """
        if self.max_workers is not None:
            return self.max_workers
        cpus = os.cpu_count() or 1
        if self.backend == "process":
            return cpus
        return min(32, cpus + 4)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def submit(
        self,
        request: SolveRequest,
        *,
        check: Callable[[str], None] | None = None,
    ) -> SolveResult:
        """Solve one request through the full serving pipeline."""
        return self.solve_many([request], check=check)[0]

    def solve_many(
        self,
        requests: Sequence[SolveRequest],
        *,
        check: Callable[[str], None] | None = None,
    ) -> list[SolveResult]:
        """Solve a batch; returns one result per request, in order.

        Identical requests (same fingerprint) are solved once; cache
        hits are not solved at all.  Raises
        :class:`~repro.exceptions.TransientWorkerError` when a job
        still fails after the retry budget — results solved before the
        failure remain cached, so resubmission only redoes the failures.

        ``check`` is a cooperative cancellation hook: when given, it is
        called with the stage name (``fingerprint`` / ``cache`` /
        ``solve`` / ``verify`` / ``respond``) before that stage runs —
        and again before every retry round inside the solve stage.
        Raising from it (the solve service raises
        :class:`~repro.exceptions.DeadlineExceededError`) aborts the
        batch at that stage boundary; results already solved stay
        cached, so an expired batch never re-does finished work.
        """
        requests = list(requests)
        self.telemetry.incr("jobs_submitted", len(requests))
        obs = self.sink if self.sink is not None else NULL_SINK
        if check is not None:
            check("fingerprint")

        with obs.span("engine.batch", requests=len(requests)) as batch_span:
            with obs.span("engine.fingerprint", requests=len(requests)):
                with self.telemetry.timer("fingerprint"):
                    jobs: dict[str, _Job] = {}
                    # instance serialization dominates fingerprint cost, so
                    # hash each distinct instance *object* once per batch.
                    digests: dict[int, str] = {}
                    for pos, req in enumerate(requests):
                        key = digests.get(id(req.instance))
                        if key is None:
                            key = digests[id(req.instance)] = instance_digest(
                                req.instance
                            )
                        fp = solve_fingerprint(
                            req.instance, req.solver, req.spec(), instance_key=key
                        )
                        job = jobs.get(fp)
                        if job is None:
                            jobs[fp] = job = _Job(fingerprint=fp, request=req)
                        job.positions.append(pos)
            self.telemetry.incr("dedup_hits", len(requests) - len(jobs))
            self.telemetry.incr("unique_jobs", len(jobs))

            if check is not None:
                check("cache")
            with obs.span("engine.cache", jobs=len(jobs)) as cache_span:
                with self.telemetry.timer("cache"):
                    to_solve: list[_Job] = []
                    tiers = {"memory": 0, "disk": 0, "miss": 0}
                    for job in jobs.values():
                        payload, tier = self.cache.get_with_tier(job.fingerprint)
                        tiers[tier] += 1
                        if payload is not None:
                            job.payload = payload
                            job.from_cache = True
                            self.telemetry.incr("cache_hits")
                        else:
                            to_solve.append(job)
                            self.telemetry.incr("cache_misses")
                cache_span.set(
                    memory_hits=tiers["memory"],
                    disk_hits=tiers["disk"],
                    misses=tiers["miss"],
                )

            if check is not None:
                check("solve")
            with obs.span(
                "engine.solve", jobs=len(to_solve), backend=self.backend
            ):
                self._solve_jobs(to_solve, check=check)

            for job in jobs.values():
                payload = job.payload
                assert payload is not None  # every job is solved or cached by now
                if not job.from_cache:
                    self.telemetry.incr("proposals", int(payload.get("proposals", 0)))
                    self.telemetry.incr("rotations", int(payload.get("rotations", 0)))

            if check is not None:
                check("verify")
            stable_by_fp: dict[str, bool | None] = {}
            verdict_tiers = {"memory": 0, "disk": 0, "miss": 0}
            with obs.span("engine.verify") as verify_span:
                with self.telemetry.timer("verify"):
                    for job in jobs.values():
                        if any(requests[p].verify for p in job.positions):
                            stable_by_fp[job.fingerprint] = self._verify(
                                job, verdict_tiers
                            )
                verify_span.set(
                    verified=len(stable_by_fp),
                    verdict_memory_hits=verdict_tiers["memory"],
                    verdict_disk_hits=verdict_tiers["disk"],
                    verdict_misses=verdict_tiers["miss"],
                )
            if check is not None:
                check("respond")
            batch_span.set(
                unique_jobs=len(jobs),
                solved=len(to_solve),
                cache_hits=len(jobs) - len(to_solve),
            )

        results: list[SolveResult] = [None] * len(requests)  # type: ignore[list-item]
        for job in jobs.values():
            payload = job.payload
            assert payload is not None
            for p in job.positions:
                req = requests[p]
                results[p] = SolveResult(
                    fingerprint=job.fingerprint,
                    solver=req.solver,
                    status=str(payload.get("status", "ok")),
                    payload=payload,
                    from_cache=job.from_cache,
                    deduped=p != job.positions[0],
                    attempts=job.attempts,
                    seconds=job.seconds,
                    stable=stable_by_fp.get(job.fingerprint),
                    label=req.label,
                )
        return results

    # ------------------------------------------------------------------
    # solve stage: dispatch + retry
    # ------------------------------------------------------------------

    def _solve_jobs(
        self,
        pending: list[_Job],
        check: Callable[[str], None] | None = None,
    ) -> None:
        attempt = 0
        while pending:
            if check is not None and attempt > 0:
                check("solve")  # re-check budget before burning a retry round
            if attempt >= self.retry.max_attempts:
                labels = ", ".join(
                    job.request.label or job.fingerprint[:12] for job in pending
                )
                raise TransientWorkerError(
                    f"{len(pending)} job(s) still failing after {attempt} "
                    f"attempt(s): {labels}",
                    attempts=attempt,
                )
            if attempt > 0:
                self.telemetry.incr("retries", len(pending))
                delay = self.retry.delay(attempt - 1)
                if delay > 0:
                    self._sleep(delay)
            pending = self._attempt(pending, attempt)
            attempt += 1

    def _attempt(self, jobs: list[_Job], attempt: int) -> list[_Job]:
        """Run one dispatch round; return the jobs that failed transiently."""
        pool = self._ensure_pool()
        failed: list[_Job] = []
        dispatched: list[tuple[_Job, Future[dict[str, Any]] | None]] = []
        with self.telemetry.timer("solve"):
            singles: list[_Job] = jobs
            stacked: list[tuple[list[_Job], Future[list[dict[str, Any]]]]] = []
            if pool is None:
                # serial backend: same-shape kary jobs stack into one
                # arena solve; the rest fall through to the loop below
                singles, stack_failed = solve_stacked_serial(
                    jobs,
                    telemetry=self.telemetry,
                    sink=self.sink,
                    fault_hook=self._fault_hook,
                    timer=self._timer,
                    attempt=attempt,
                )
                failed.extend(stack_failed)
            else:
                # pool backends: same-shape timeout-free kary jobs ship
                # as one stacked chunk per worker instead of one future
                # per instance; the rest keep the per-job path below
                singles, stack_failed, chunks = plan_stacked_pool(
                    jobs,
                    workers=self._pool_slots(),
                    telemetry=self.telemetry,
                    fault_hook=self._fault_hook,
                    attempt=attempt,
                )
                failed.extend(stack_failed)
                for chunk, edges in chunks:
                    texts = [
                        instance_to_json(job.request.instance) for job in chunk
                    ]
                    stacked.append(
                        (chunk, pool.submit(solve_stacked_chunk, edges, texts))
                    )
            for job in singles:
                job.attempts = attempt + 1
                start = self._timer()
                task = (
                    job.request.solver,
                    instance_to_json(job.request.instance),
                    job.request.spec(),
                )
                try:
                    if self._fault_hook is not None:
                        self._fault_hook(job.request, attempt)
                    if pool is None:
                        self.telemetry.incr("solver_invocations")
                        job.payload = _solve_worker(task, sink=self.sink)
                        job.seconds = self._timer() - start
                    else:
                        self.telemetry.incr("solver_invocations")
                        dispatched.append((job, pool.submit(_solve_worker, task)))
                except TransientWorkerError:
                    self.telemetry.incr("transient_failures")
                    failed.append(job)
            for job, future in dispatched:
                assert future is not None
                start = self._timer()
                try:
                    job.payload = future.result(timeout=job.request.timeout)
                    job.seconds = self._timer() - start
                except FuturesTimeoutError:
                    future.cancel()
                    self.telemetry.incr("transient_failures")
                    self.telemetry.incr("timeouts")
                    failed.append(job)
                except BrokenExecutor:
                    self._reset_pool()
                    self.telemetry.incr("transient_failures")
                    failed.append(job)
                except TransientWorkerError:
                    self.telemetry.incr("transient_failures")
                    failed.append(job)
            for chunk, chunk_future in stacked:
                start = self._timer()
                try:
                    payloads = chunk_future.result()
                    elapsed = self._timer() - start
                    for job, payload in zip(chunk, payloads):
                        job.payload = payload
                        job.seconds = elapsed / len(chunk)
                except BrokenExecutor:
                    self._reset_pool()
                    self.telemetry.incr("transient_failures", len(chunk))
                    failed.extend(chunk)
                except TransientWorkerError:
                    self.telemetry.incr("transient_failures", len(chunk))
                    failed.extend(chunk)
        for job in jobs:
            if job.payload is not None and not job.from_cache:
                self.cache.put(job.fingerprint, job.payload)
        return failed

    # ------------------------------------------------------------------
    # verify stage
    # ------------------------------------------------------------------

    def _verify(
        self, job: _Job, tiers: dict[str, int] | None = None
    ) -> bool | None:
        payload = job.payload
        assert payload is not None
        if payload.get("status") != "ok":
            return None  # nothing to verify on a non-existence verdict
        req = job.request
        # the fingerprint determines both the matching and the verification
        # method, so a cached verdict makes re-verification a lookup.
        cached, tier = self.cache.get_verdict_with_tier(job.fingerprint)
        if tiers is not None:
            tiers[tier] += 1
        if cached is not None:
            self.telemetry.incr("verdict_cache_hits")
            self.telemetry.incr("verified_stable" if cached else "verified_unstable")
            return cached
        if req.solver in ("kary", "priority"):
            matching = matching_from_dict(req.instance, dict(payload["matching"]))
            stable = find_blocking_family(req.instance, matching) is None
        else:
            from repro.kpartite.existence import is_stable_binary  # lazy upward ref

            pairs = [
                (Member(int(a[0]), int(a[1])), Member(int(b[0]), int(b[1])))
                for a, b in payload["matching"]["pairs"]
            ]
            stable = is_stable_binary(req.instance, pairs, linearization=req.linearization)
        self.cache.put_verdict(job.fingerprint, stable)
        self.telemetry.incr("verified_stable" if stable else "verified_unstable")
        return stable
