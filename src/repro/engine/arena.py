"""Cross-instance arena batching for the engine's serial solve path.

``MatchingEngine.solve_many`` historically solved every unique job with
its own ``iterative_binding`` call — per-instance Python dispatch that
dominates wall time when production traffic is thousands of *small*
same-shape instances.  This module is the solve-stage middle layer that
fixes it: after the cache and dedup stages have trimmed the batch, the
surviving ``kary`` jobs are grouped by arena shape — ``(k, n)`` plus the
resolved binding-tree edges — and every group the measured crossover
(:func:`~repro.bipartite.gale_shapley_batch.resolve_batch_strategy`)
says is worth stacking is packed into one ``(count, n, n)`` preference
arena per tree edge and solved by the stacked GS kernel in a single
vectorized pass per edge.

Contracts preserved exactly (pinned by ``tests/engine/test_arena.py``):

* payloads are byte-identical to the per-instance path (same matching
  by proposer-optimality, same proposal totals by schedule invariance,
  same quality block), so cache entries are interchangeable;
* ``fault_hook`` fires once per job per attempt and a raising hook
  fails only that job — the rest of its group still solves;
* the ``solver_invocations`` / ``transient_failures`` telemetry
  counters tick per *job*, exactly as the loop path does, so existing
  op-counter gates in BENCH_perf.json are unaffected.

Only the serial backend stacks: pool backends already overlap jobs
across workers, and shipping arenas through pickled futures would
serialize the win away.  Cache hits never reach this layer (the
pipeline filters them before the solve stage).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.bipartite.gale_shapley_batch import (
    gale_shapley_batch,
    resolve_batch_strategy,
)
from repro.core.binding_tree import BindingTree
from repro.core.kary_matching import KAryMatching
from repro.engine.telemetry import EngineTelemetry, matching_quality
from repro.exceptions import TransientWorkerError
from repro.model.members import Member
from repro.model.serialize import matching_to_dict
from repro.obs.sink import NULL_SINK, ObsSink

__all__ = ["stack_key", "solve_stacked_serial"]


def stack_key(request: Any) -> "tuple | None":
    """Arena-group key for a solve request, or ``None`` if unstackable.

    Two jobs share an arena iff they are ``kary`` solves over instances
    of the same ``(k, n)`` bound along the same resolved tree edges —
    the GS engine choice is *not* part of the key because every engine
    returns the identical matching and proposal total.
    """
    if request.solver != "kary":
        return None
    inst = request.instance
    spec = request.spec()
    tree = BindingTree.from_spec(inst.k, spec["tree"], spec.get("tree_seed"))
    return (inst.k, inst.n, tree.edges)


def _solve_group(
    group: "list[Any]",
    edges: "tuple[tuple[int, int], ...]",
    sink: "ObsSink",
    timer: Callable[[], float],
) -> None:
    """Solve one same-shape job group stacked; fill each job's payload."""
    count = len(group)
    instances = [job.request.instance for job in group]
    n = instances[0].n
    start = timer()
    pairs: list[list[tuple[Member, Member]]] = [[] for _ in range(count)]
    proposals = np.zeros(count, dtype=np.int64)
    with sink.span(
        "engine.stack", count=count, n=n, edges=[list(e) for e in edges]
    ) as span:
        for g, h in edges:
            views = [inst.bipartite_view(g, h) for inst in instances]
            p_stack = np.stack([v.proposer_prefs for v in views])
            r_stack = np.stack([v.responder_ranks for v in views])
            res = gale_shapley_batch(
                p_stack, responder_ranks=r_stack, trusted=True, sink=sink
            )
            proposals += res.proposals
            for c in range(count):
                pairs[c].extend(
                    (Member(g, i), Member(h, int(j)))
                    for i, j in enumerate(res.matchings[c])
                )
        span.set(proposals=int(proposals.sum()))
    elapsed = timer() - start
    tree_edges = [list(e) for e in edges]
    for c, job in enumerate(group):
        matching = KAryMatching.from_pairs(instances[c], pairs[c])
        job.payload = {
            "status": "ok",
            "solver": "kary",
            "matching": matching_to_dict(matching),
            "proposals": int(proposals[c]),
            "rotations": 0,
            "tree_edges": tree_edges,
            "quality": matching_quality(matching),
        }
        job.seconds = elapsed / count


def solve_stacked_serial(
    jobs: "Sequence[Any]",
    *,
    telemetry: EngineTelemetry,
    sink: "ObsSink | None",
    fault_hook: "Callable[[Any, int], None] | None",
    timer: Callable[[], float],
    attempt: int,
) -> "tuple[list[Any], list[Any]]":
    """Stack-solve the eligible jobs of one serial dispatch round.

    Groups the ``kary`` jobs by :func:`stack_key`, solves every group
    the measured crossover favors as one arena (filling ``job.payload``
    / ``job.seconds`` / ``job.attempts`` in place), and returns
    ``(leftover, failed)``: jobs the per-instance loop must still solve,
    and jobs whose ``fault_hook`` raised
    :class:`~repro.exceptions.TransientWorkerError` this attempt.
    """
    obs = sink if sink is not None else NULL_SINK
    groups: dict[tuple, list[Any]] = {}
    leftover: list[Any] = []
    for job in jobs:
        key = stack_key(job.request)
        if key is None:
            leftover.append(job)
        else:
            groups.setdefault(key, []).append(job)
    failed: list[Any] = []
    for (_k, n, edges), group in groups.items():
        if resolve_batch_strategy(len(group), n) != "stacked":
            leftover.extend(group)
            continue
        survivors: list[Any] = []
        for job in group:
            job.attempts = attempt + 1
            try:
                if fault_hook is not None:
                    fault_hook(job.request, attempt)
            except TransientWorkerError:
                telemetry.incr("transient_failures")
                failed.append(job)
                continue
            telemetry.incr("solver_invocations")
            survivors.append(job)
        if not survivors:
            continue
        _solve_group(survivors, edges, obs, timer)
        telemetry.incr("stack_groups")
        telemetry.incr("stack_jobs", len(survivors))
    return leftover, failed
