"""Cross-instance arena batching for the engine's serial solve path.

``MatchingEngine.solve_many`` historically solved every unique job with
its own ``iterative_binding`` call — per-instance Python dispatch that
dominates wall time when production traffic is thousands of *small*
same-shape instances.  This module is the solve-stage middle layer that
fixes it: after the cache and dedup stages have trimmed the batch, the
surviving ``kary`` jobs are grouped by arena shape — ``(k, n)`` plus the
resolved binding-tree edges — and every group the measured crossover
(:func:`~repro.bipartite.gale_shapley_batch.resolve_batch_strategy`)
says is worth stacking is packed into one ``(count, n, n)`` preference
arena per tree edge and solved by the stacked GS kernel in a single
vectorized pass per edge.

Contracts preserved exactly (pinned by ``tests/engine/test_arena.py``):

* payloads are byte-identical to the per-instance path (same matching
  by proposer-optimality, same proposal totals by schedule invariance,
  same quality block), so cache entries are interchangeable;
* ``fault_hook`` fires once per job per attempt and a raising hook
  fails only that job — the rest of its group still solves;
* the ``solver_invocations`` / ``transient_failures`` telemetry
  counters tick per *job*, exactly as the loop path does, so existing
  op-counter gates in BENCH_perf.json are unaffected.

Pool backends stack too, one arena per *worker*: the eligible jobs are
split into per-worker sub-chunks (each gated by the same crossover at
its own chunk size), and every chunk ships as a single picklable pool
task (:func:`solve_stacked_chunk`) — so a worker amortizes dispatch
across its whole chunk instead of paying one future round-trip per
instance.  Per-job timeouts cannot be enforced inside a shared chunk,
so only timeout-free jobs are chunked; the rest keep the per-job
future path.  Cache hits never reach this layer (the pipeline filters
them before the solve stage).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.bipartite.gale_shapley_batch import (
    gale_shapley_batch,
    resolve_batch_strategy,
)
from repro.core.binding_tree import BindingTree
from repro.core.kary_matching import KAryMatching
from repro.engine.telemetry import EngineTelemetry, matching_quality
from repro.exceptions import TransientWorkerError
from repro.model.members import Member
from repro.model.serialize import instance_from_json, matching_to_dict
from repro.obs.sink import NULL_SINK, ObsSink

__all__ = [
    "stack_key",
    "solve_stacked_serial",
    "plan_stacked_pool",
    "solve_stacked_chunk",
]


def stack_key(request: Any) -> "tuple | None":
    """Arena-group key for a solve request, or ``None`` if unstackable.

    Two jobs share an arena iff they are ``kary`` solves over instances
    of the same ``(k, n)`` bound along the same resolved tree edges —
    the GS engine choice is *not* part of the key because every engine
    returns the identical matching and proposal total.
    """
    if request.solver != "kary":
        return None
    inst = request.instance
    spec = request.spec()
    tree = BindingTree.from_spec(inst.k, spec["tree"], spec.get("tree_seed"))
    return (inst.k, inst.n, tree.edges)


def _arena_payloads(
    instances: "list[Any]",
    edges: "tuple[tuple[int, int], ...]",
    sink: "ObsSink",
) -> "tuple[list[dict[str, Any]], int]":
    """Solve same-shape instances as one arena; return per-instance payloads.

    The shared numeric core behind both the serial group solve and the
    pool-worker chunk entry: one stacked GS pass per tree edge, then
    per-instance payload assembly (byte-identical to the per-instance
    loop path).  Returns ``(payloads, total_proposals)``.
    """
    count = len(instances)
    pairs: list[list[tuple[Member, Member]]] = [[] for _ in range(count)]
    proposals = np.zeros(count, dtype=np.int64)
    for g, h in edges:
        views = [inst.bipartite_view(g, h) for inst in instances]
        p_stack = np.stack([v.proposer_prefs for v in views])
        r_stack = np.stack([v.responder_ranks for v in views])
        res = gale_shapley_batch(
            p_stack, responder_ranks=r_stack, trusted=True, sink=sink
        )
        proposals += res.proposals
        for c in range(count):
            pairs[c].extend(
                (Member(g, i), Member(h, int(j)))
                for i, j in enumerate(res.matchings[c])
            )
    tree_edges = [list(e) for e in edges]
    payloads: list[dict[str, Any]] = []
    for c, inst in enumerate(instances):
        matching = KAryMatching.from_pairs(inst, pairs[c])
        payloads.append(
            {
                "status": "ok",
                "solver": "kary",
                "matching": matching_to_dict(matching),
                "proposals": int(proposals[c]),
                "rotations": 0,
                "tree_edges": tree_edges,
                "quality": matching_quality(matching),
            }
        )
    return payloads, int(proposals.sum())


def _solve_group(
    group: "list[Any]",
    edges: "tuple[tuple[int, int], ...]",
    sink: "ObsSink",
    timer: Callable[[], float],
) -> None:
    """Solve one same-shape job group stacked; fill each job's payload."""
    count = len(group)
    instances = [job.request.instance for job in group]
    n = instances[0].n
    start = timer()
    with sink.span(
        "engine.stack", count=count, n=n, edges=[list(e) for e in edges]
    ) as span:
        payloads, total = _arena_payloads(instances, edges, sink)
        span.set(proposals=total)
    elapsed = timer() - start
    for job, payload in zip(group, payloads):
        job.payload = payload
        job.seconds = elapsed / count


def solve_stacked_chunk(
    edges: "tuple[tuple[int, int], ...]",
    instance_jsons: "list[str]",
) -> "list[dict[str, Any]]":
    """Pool-worker entry: solve one pickled same-shape chunk stacked.

    Mirrors ``_solve_worker``'s contract (top-level and picklable, no
    sink — pool workers stay sink-free) but solves the whole chunk as
    one arena, returning one payload per instance in chunk order.
    """
    instances = [instance_from_json(text) for text in instance_jsons]
    payloads, _ = _arena_payloads(
        instances, tuple(tuple(e) for e in edges), NULL_SINK
    )
    return payloads


def solve_stacked_serial(
    jobs: "Sequence[Any]",
    *,
    telemetry: EngineTelemetry,
    sink: "ObsSink | None",
    fault_hook: "Callable[[Any, int], None] | None",
    timer: Callable[[], float],
    attempt: int,
) -> "tuple[list[Any], list[Any]]":
    """Stack-solve the eligible jobs of one serial dispatch round.

    Groups the ``kary`` jobs by :func:`stack_key`, solves every group
    the measured crossover favors as one arena (filling ``job.payload``
    / ``job.seconds`` / ``job.attempts`` in place), and returns
    ``(leftover, failed)``: jobs the per-instance loop must still solve,
    and jobs whose ``fault_hook`` raised
    :class:`~repro.exceptions.TransientWorkerError` this attempt.
    """
    obs = sink if sink is not None else NULL_SINK
    groups: dict[tuple, list[Any]] = {}
    leftover: list[Any] = []
    for job in jobs:
        key = stack_key(job.request)
        if key is None:
            leftover.append(job)
        else:
            groups.setdefault(key, []).append(job)
    failed: list[Any] = []
    for (_k, n, edges), group in groups.items():
        if resolve_batch_strategy(len(group), n) != "stacked":
            leftover.extend(group)
            continue
        survivors: list[Any] = []
        for job in group:
            job.attempts = attempt + 1
            try:
                if fault_hook is not None:
                    fault_hook(job.request, attempt)
            except TransientWorkerError:
                telemetry.incr("transient_failures")
                failed.append(job)
                continue
            telemetry.incr("solver_invocations")
            survivors.append(job)
        if not survivors:
            continue
        _solve_group(survivors, edges, obs, timer)
        telemetry.incr("stack_groups")
        telemetry.incr("stack_jobs", len(survivors))
    return leftover, failed


def plan_stacked_pool(
    jobs: "Sequence[Any]",
    *,
    workers: int,
    telemetry: EngineTelemetry,
    fault_hook: "Callable[[Any, int], None] | None",
    attempt: int,
) -> "tuple[list[Any], list[Any], list[tuple[list[Any], tuple]]]":
    """Plan one pool dispatch round's stacked chunks.

    Groups the eligible jobs by :func:`stack_key` — jobs carrying a
    per-job ``timeout`` are never chunked, since a shared future cannot
    enforce one job's deadline — and splits each group into at most
    ``workers`` sub-chunks.  A group only stacks when the crossover
    favors arenas *at the sub-chunk size* (a group that stacks serially
    may still loop here: splitting across workers shrinks each arena).

    ``fault_hook`` fires per job in the parent process, exactly like
    the per-job paths, so an injected failure fails only that job and
    never poisons its chunk.  Returns ``(leftover, failed, chunks)``:
    jobs for the per-job future path, jobs failed by the hook, and
    ``(chunk_jobs, edges)`` tasks to submit via
    :func:`solve_stacked_chunk`.
    """
    groups: dict[tuple, list[Any]] = {}
    leftover: list[Any] = []
    for job in jobs:
        key = stack_key(job.request) if job.request.timeout is None else None
        if key is None:
            leftover.append(job)
        else:
            groups.setdefault(key, []).append(job)
    failed: list[Any] = []
    chunks: list[tuple[list[Any], tuple]] = []
    slots = max(1, workers)
    for (_k, n, edges), group in groups.items():
        chunk_size = -(-len(group) // slots)  # ceil division
        if resolve_batch_strategy(chunk_size, n) != "stacked":
            leftover.extend(group)
            continue
        survivors: list[Any] = []
        for job in group:
            job.attempts = attempt + 1
            try:
                if fault_hook is not None:
                    fault_hook(job.request, attempt)
            except TransientWorkerError:
                telemetry.incr("transient_failures")
                failed.append(job)
                continue
            telemetry.incr("solver_invocations")
            survivors.append(job)
        for i in range(0, len(survivors), chunk_size):
            chunk = survivors[i : i + chunk_size]
            chunks.append((chunk, edges))
            telemetry.incr("stack_groups")
            telemetry.incr("stack_jobs", len(chunk))
    return leftover, failed, chunks
