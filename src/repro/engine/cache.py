"""LRU result cache with an optional JSON on-disk store.

Values are the plain-JSON payload dicts produced by the engine's solve
worker (never live objects), so every entry can round-trip through the
disk store unchanged.  The in-memory tier is a bounded LRU; the disk
tier, when configured, is one ``<fingerprint>.json`` file per entry —
content-addressed, so concurrent writers of the *same* key write the
same bytes and order never matters.

Counters (hits / misses / evictions / stores, plus the disk variants)
are kept on the cache itself and surface through the engine telemetry
snapshot; the serving-path benchmark (E24) asserts on them.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Counter block for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_hits: int = 0
    disk_stores: int = 0
    verdict_hits: int = 0
    verdict_misses: int = 0
    verdict_stores: int = 0
    verdict_disk_hits: int = 0
    disk_write_errors: int = 0

    def to_dict(self) -> dict[str, int]:
        """Plain-dict form for JSON telemetry export."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "verdict_hits": self.verdict_hits,
            "verdict_misses": self.verdict_misses,
            "verdict_stores": self.verdict_stores,
            "verdict_disk_hits": self.verdict_disk_hits,
            "disk_write_errors": self.disk_write_errors,
        }


class ResultCache:
    """Bounded in-memory LRU over JSON payloads, with optional disk tier.

    Parameters
    ----------
    max_entries:
        In-memory capacity; the least-recently-used entry is evicted
        when a store would exceed it.  Eviction never touches the disk
        tier, so a disk-backed cache can hold far more than fits in
        memory and re-promote entries on demand.
    disk_dir:
        Directory for the persistent tier (created if missing).
        ``None`` disables it.
    """

    def __init__(self, max_entries: int = 1024, disk_dir: Path | str | None = None) -> None:
        if max_entries < 1:
            raise ConfigurationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._verdicts: OrderedDict[str, bool] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    #: process-wide uniquifier for temp-file names (see _write_atomic).
    _tmp_seq = itertools.count()

    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.json"

    def _verdict_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.verdict.json"

    def _write_atomic(self, path: Path, text: str) -> None:
        """Publish ``text`` at ``path`` via a unique temp file + rename.

        N fleet workers may share one cache directory, so the temp name
        must be unique *per writer* (pid + counter): a shared ``.tmp``
        name would let one process rename another's half-written file
        into place.  ``os.replace`` is atomic on POSIX, so readers only
        ever see a complete old or complete new entry — and because
        entries are content-addressed, racing writers of the same key
        publish identical bytes and the winner doesn't matter.  The
        leading dot keeps stray temp files (a writer killed mid-write)
        out of the ``*.json`` namespace that readers and ``clear`` scan.
        """
        tmp = path.parent / f".{path.name}.{os.getpid()}-{next(self._tmp_seq)}.tmp"
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        except OSError:
            # a full/ro disk must degrade the cache, not fail the solve
            self.stats.disk_write_errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def get(self, key: str) -> dict[str, Any] | None:
        """Payload for ``key``, or ``None``; a hit refreshes recency.

        A miss in memory falls through to the disk tier (when present)
        and promotes the loaded entry back into memory.
        """
        return self.get_with_tier(key)[0]

    def get_with_tier(self, key: str) -> tuple[dict[str, Any] | None, str]:
        """Like :meth:`get`, but also report which tier answered.

        Returns ``(payload, tier)`` with ``tier`` one of ``"memory"``,
        ``"disk"``, or ``"miss"`` (``payload is None`` iff ``"miss"``) —
        the attribute the engine's ``engine.cache`` spans carry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry, "memory"
            if self.disk_dir is not None:
                path = self._disk_path(key)
                try:
                    loaded = json.loads(path.read_text())
                except (OSError, ValueError):
                    loaded = None  # absent or corrupt: treat as a miss
                if isinstance(loaded, dict):
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    self._store_locked(key, loaded, write_disk=False)
                    return loaded, "disk"
            self.stats.misses += 1
            return None, "miss"

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` (a plain-JSON dict) under ``key``."""
        with self._lock:
            self._store_locked(key, payload, write_disk=True)

    def _store_locked(
        self, key: str, payload: dict[str, Any], *, write_disk: bool
    ) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = payload
        self.stats.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        if write_disk and self.disk_dir is not None:
            self._write_atomic(
                self._disk_path(key), json.dumps(payload, sort_keys=True)
            )
            self.stats.disk_stores += 1

    # ------------------------------------------------------------------
    # verdict tier (content-addressed stability verdicts)
    # ------------------------------------------------------------------

    def get_verdict(self, key: str) -> bool | None:
        """Cached stability verdict for ``key``, or ``None`` if unknown."""
        return self.get_verdict_with_tier(key)[0]

    def get_verdict_with_tier(self, key: str) -> tuple[bool | None, str]:
        """Cached verdict plus the tier that answered.

        Returns ``(stable, tier)`` with ``tier`` one of ``"memory"``,
        ``"disk"``, or ``"miss"``.  Verdicts are keyed by the same
        content-addressed solve fingerprint as results: the fingerprint
        fully determines both the matching and the verification method,
        so re-verifying a cached matching is a lookup, not a DFS.
        """
        with self._lock:
            verdict = self._verdicts.get(key)
            if verdict is not None:
                self._verdicts.move_to_end(key)
                self.stats.verdict_hits += 1
                return verdict, "memory"
            if self.disk_dir is not None:
                try:
                    loaded = json.loads(self._verdict_path(key).read_text())
                except (OSError, ValueError):
                    loaded = None  # absent or corrupt: treat as a miss
                if isinstance(loaded, dict) and isinstance(
                    loaded.get("stable"), bool
                ):
                    stable = bool(loaded["stable"])
                    self.stats.verdict_hits += 1
                    self.stats.verdict_disk_hits += 1
                    self._store_verdict_locked(key, stable, write_disk=False)
                    return stable, "disk"
            self.stats.verdict_misses += 1
            return None, "miss"

    def put_verdict(self, key: str, stable: bool) -> None:
        """Record the stability verdict for the matching behind ``key``."""
        with self._lock:
            self._store_verdict_locked(key, stable, write_disk=True)

    def _store_verdict_locked(
        self, key: str, stable: bool, *, write_disk: bool
    ) -> None:
        if key in self._verdicts:
            self._verdicts.move_to_end(key)
        self._verdicts[key] = stable
        self.stats.verdict_stores += 1
        while len(self._verdicts) > self.max_entries:
            self._verdicts.popitem(last=False)
        if write_disk and self.disk_dir is not None:
            self._write_atomic(
                self._verdict_path(key), json.dumps({"stable": stable, "version": 1})
            )

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory tiers (and the disk tier when ``disk``)."""
        with self._lock:
            self._entries.clear()
            self._verdicts.clear()
            if disk and self.disk_dir is not None:
                # the tmp glob sweeps temp files orphaned by a writer
                # killed mid-publish (fleet worker crash injection)
                for pattern in ("*.json", ".*.tmp"):
                    for path in sorted(self.disk_dir.glob(pattern)):
                        path.unlink(missing_ok=True)
