"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Errors are split along the two axes users care about:

* *input* problems (malformed preferences, unbalanced instances, bad
  binding trees) raise :class:`InvalidInstanceError` /
  :class:`InvalidBindingTreeError` / :class:`InvalidMatchingError`;
* *outcome* problems (a stable matching provably does not exist, which is
  an expected result for k-partite binary matching per Theorem 1) raise
  :class:`NoStableMatchingError`.

``NoStableMatchingError`` deliberately carries the witness that proves
non-existence (the participant whose reduced list emptied during Irving's
algorithm) so experiments can report *why* an instance is unsolvable.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InvalidInstanceError",
    "InvalidBindingTreeError",
    "InvalidMatchingError",
    "NoStableMatchingError",
    "ReplayDivergenceError",
    "ScheduleConflictError",
    "SimulationError",
    "BudgetExhaustedError",
    "TransientWorkerError",
    "ServiceError",
    "QueueFullError",
    "RateLimitedError",
    "DeadlineExceededError",
    "ServiceClosedError",
    "InvalidServiceRequestError",
]


class ReproError(Exception):
    """Base class for all :mod:`repro` errors."""


class ConfigurationError(ReproError, ValueError):
    """A caller-supplied option or parameter value is invalid.

    Examples: an unknown policy / engine / backend name, a non-positive
    processor count, a pivot policy that returned an ineligible
    candidate.  Subclasses ``ValueError`` so pre-hierarchy callers that
    catch the builtin keep working.
    """


class InvalidInstanceError(ReproError, ValueError):
    """A problem instance violates a structural requirement.

    Examples: unbalanced gender sizes, a preference list that is not a
    permutation of the opposite set, duplicate member names.
    """


class InvalidBindingTreeError(ReproError, ValueError):
    """A binding tree is not a valid spanning tree of the gender set.

    Raised for cycles, disconnected edge sets, self-loops, edges that
    reference unknown genders, or (for priority-aware binding) trees that
    fail the bitonic requirement when one was demanded.
    """


class InvalidMatchingError(ReproError, ValueError):
    """A matching object is structurally inconsistent with its instance.

    Examples: a member appears in two tuples, a tuple misses a gender,
    a matching references unknown members.
    """


class NoStableMatchingError(ReproError):
    """No stable matching exists for the given instance.

    This is an *expected, informative* outcome for binary matching in
    k-partite graphs with k > 2 (Theorem 1 of the paper).  The ``witness``
    attribute names a participant whose reduced preference list became
    empty in Irving's algorithm, which certifies non-existence.
    """

    def __init__(self, message: str, witness: object | None = None) -> None:
        super().__init__(message)
        self.witness = witness


class ScheduleConflictError(ReproError, RuntimeError):
    """A parallel schedule assigned conflicting resource access in a round."""


class SimulationError(ReproError, RuntimeError):
    """The distributed / PRAM simulator reached an inconsistent state."""


class ReplayDivergenceError(ReproError, RuntimeError):
    """Two replays of one capture disagreed byte-for-byte.

    Raised by the ``repro replay --check`` gate when the replayed
    :class:`~repro.service.loadgen.LoadReport`, metrics snapshot, or
    combined journal differs between two runs of the same capture —
    the signal that nondeterminism crept into the serving stack.
    """


class TransientWorkerError(ReproError, RuntimeError):
    """A solve attempt failed for a reason retrying may fix.

    Raised by the :mod:`repro.engine` serving layer when a worker dies,
    a per-job timeout expires, or an injected fault hook simulates such
    a failure in tests.  The engine retries these with bounded backoff;
    the error only reaches callers once the retry budget is exhausted.
    The ``attempts`` attribute records how many attempts were made.
    """

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__(message)
        self.attempts = attempts


class ServiceError(ReproError):
    """Base class for :mod:`repro.service` request-level failures.

    Every rejection a request can suffer inside the async solve service
    (queue overflow, rate limiting, deadline expiry, shutdown) derives
    from this class and carries the ``request_id`` it applies to, so
    callers can attribute failures in a batch without parsing messages.
    """

    def __init__(self, message: str, *, request_id: str = "") -> None:
        super().__init__(message)
        self.request_id = request_id


class QueueFullError(ServiceError):
    """The admission queue rejected (or shed) a request.

    Raised at admission time under the ``reject`` backpressure policy
    when the queue is at capacity, and delivered to an already-queued
    request that the ``shed_oldest`` policy evicted to make room for a
    newer arrival (``shed`` is then True).
    """

    def __init__(
        self, message: str, *, request_id: str = "", shed: bool = False
    ) -> None:
        super().__init__(message, request_id=request_id)
        self.shed = shed


class RateLimitedError(ServiceError):
    """A per-client token bucket had no token for this request.

    ``retry_after_s`` is the bucket's estimate of when one token will
    have refilled — the value a real front door would surface as a
    ``Retry-After`` header.
    """

    def __init__(
        self, message: str, *, request_id: str = "", retry_after_s: float = 0.0
    ) -> None:
        super().__init__(message, request_id=request_id)
        self.retry_after_s = retry_after_s


class DeadlineExceededError(ServiceError):
    """A request ran out of its deadline budget.

    Raised *before* work starts (admission / dequeue checks) and
    *mid-flight* via the cooperative checks between pipeline and engine
    stages; ``stage`` names the check point that observed the expiry.
    """

    def __init__(
        self, message: str, *, request_id: str = "", stage: str = ""
    ) -> None:
        super().__init__(message, request_id=request_id)
        self.stage = stage


class ServiceClosedError(ServiceError):
    """The service is draining or closed and accepts no new requests.

    Submissions racing a graceful shutdown get this instead of being
    silently dropped — requests admitted *before* the drain began are
    always completed (the zero-lost drain invariant).
    """


class InvalidServiceRequestError(ServiceError, ValueError):
    """A wire-format request (JSONL line) could not be parsed.

    The message always names the offending request id (or the line
    number when the id itself is unreadable) so a client can correlate
    the rejection with what it sent.
    """


class BudgetExhaustedError(ReproError, RuntimeError):
    """An explicitly-bounded search ran out of its node/time budget.

    Raised by the exhaustive 3DSM baselines when ``max_nodes`` is hit
    before a verdict; benchmarks use the bound to keep (n!)² searches
    finite.  Subclasses ``RuntimeError`` for backwards compatibility.
    """
