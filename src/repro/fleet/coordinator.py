"""``FleetCoordinator``: N worker processes behind one JSONL front door.

The production-shaped counterpart to
:class:`~repro.fleet.simfleet.SimulatedFleet` — same consistent-hash
routing, same shared abort-flag deadline protocol, same crash and drain
semantics, but the shards are real child processes
(:func:`~repro.fleet.worker.worker_main`) spawned with the ``spawn``
start method so each hosts a genuinely independent engine + cache.

Division of labour:

* the **coordinator** parses each request line once (for validity and
  the routing fingerprint), owns every deadline timer on *its* clock,
  and forwards the raw line + an abort-board slot to the owning shard;
* the **worker** re-parses, strips the deadline, samples the shared
  flag between stages, and ships back a finished response line;
* worker death is detected as pipe EOF (plus ``is_alive`` heartbeat
  sweeps): in-flight requests on the dead shard are re-routed to the
  next live shard on the ring or completed as typed ``lost_shard``
  responses — never silently dropped — and a cold replacement respawns
  on the same ring position after ``restart_delay_s``;
* :meth:`FleetCoordinator.drain` finishes everything in flight, asks
  every live worker to drain (each returns its stats, metrics snapshot,
  and span dump), and folds those into one merged
  :class:`~repro.obs.metrics.MetricsRegistry` and one shard-tagged
  combined journal.

Everything here runs on real time and real processes, so it is
exercised by a small smoke test; the determinism gates run against the
simulated fleet, which shares all routing/abort/drain logic.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.exceptions import (
    ConfigurationError,
    InvalidServiceRequestError,
    ServiceClosedError,
)
from repro.fleet.abort import ABORT_DEADLINE, SharedAbortBoard
from repro.fleet.ring import HashRing
from repro.fleet.simfleet import FleetConfig, combined_journal_records
from repro.fleet.worker import worker_main
from repro.obs.metrics import MetricsRegistry
from repro.obs.record import Recorder
from repro.service.clock import RealClock
from repro.service.protocol import invalid_line, parse_service_request

__all__ = ["FleetCoordinator", "serve_fleet_lines"]


@dataclass
class _Worker:
    """One child process plus its coordinator-side bookkeeping."""

    index: int
    name: str
    process: "multiprocessing.process.BaseProcess"
    conn: Any
    generation: int = 0
    dead: bool = False
    drained: "asyncio.Future[dict[str, Any]] | None" = None
    spans: "list[dict[str, Any]]" = field(default_factory=list)
    metrics_doc: "dict[str, Any] | None" = None
    stats_doc: "dict[str, Any] | None" = None
    cache_doc: "dict[str, Any] | None" = None


@dataclass
class _InFlight:
    """One dispatched request awaiting its response line."""

    request_id: str
    key: str
    line: str
    shard: str
    slot: int
    future: "asyncio.Future[str]"
    timer: "asyncio.Task[None] | None" = None
    tried: "set[str]" = field(default_factory=set)


def _lost_shard_line(request_id: str, shard: str) -> str:
    return json.dumps(
        {
            "id": request_id,
            "outcome": "lost_shard",
            "error": f"request {request_id!r}: shard {shard!r} crashed mid-flight",
            "error_type": "LostShardError",
            "stage": "shard",
        },
        sort_keys=True,
    )


class FleetCoordinator:
    """Spawn, route to, heartbeat, and drain a fleet of worker processes.

    Async context manager (``async with`` drains on exit); must be used
    from a running event loop on a real clock.  ``cache_dir`` points all
    workers at one shared disk cache directory (safe: the cache's disk
    writes are atomic per writer), turning one shard's solve into every
    shard's disk hit — the ``--shared-disk-cache`` serve flag; the
    per-shard ``disk_hits`` rollup in :meth:`fleet_report` shows how
    much actually crossed shards.  ``tap`` is the wire-boundary capture
    hook (duck-typed to :class:`repro.obs.capture.CaptureWriter`):
    every inbound line is recorded in global arrival order, tagged with
    the shard it was dispatched to, and every terminal outcome —
    ``invalid`` and ``lost_shard`` included — is recorded as it
    resolves.
    """

    def __init__(
        self,
        config: "FleetConfig | None" = None,
        *,
        cache_dir: "str | None" = None,
        heartbeat_s: float = 0.5,
        tap: Any = None,
    ) -> None:
        self.config = config if config is not None else FleetConfig()
        if self.config.cost_model is not None:
            raise ConfigurationError(
                "cost models are a virtual-clock device; the process fleet "
                "runs real solves on real time"
            )
        self.cache_dir = cache_dir
        self.heartbeat_s = heartbeat_s
        self.tap = tap
        self.clock = RealClock()
        self.sink = Recorder()
        self.ring = HashRing(
            [f"shard-{i}" for i in range(self.config.workers)],
            vnodes=self.config.vnodes,
        )
        self.board = SharedAbortBoard(
            max(64, self.config.workers * self.config.queue_capacity * 2)
        )
        self._mp = multiprocessing.get_context("spawn")
        self._workers: dict[str, _Worker] = {}
        self._inflight: dict[str, _InFlight] = {}
        self._state = "created"
        self._dispatched = 0
        self._responded = 0
        self._rr = 0
        self._heartbeat: "asyncio.Task[None] | None" = None
        self._respawns: list["asyncio.Task[None]"] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Lifecycle state: created / running / draining / closed."""
        return self._state

    def _config_doc(self) -> "dict[str, Any]":
        return {
            "queue_capacity": self.config.queue_capacity,
            "policy": self.config.policy,
            "workers": self.config.shard_workers,
            "cache_entries": self.config.cache_entries,
            "engine_backend": self.config.engine_backend,
        }

    def _spawn(self, index: int, generation: int) -> _Worker:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        # daemonic processes cannot have children, so a worker whose
        # engine dispatches on a process pool must be non-daemonic; the
        # drain/EOF protocol still reaps it on every exit path.
        process = self._mp.Process(
            target=worker_main,
            args=(
                index,
                child_conn,
                self.board.flags(),
                self._config_doc(),
                self.cache_dir,
            ),
            name=f"repro-fleet-worker-{index}",
            daemon=self.config.engine_backend != "process",
        )
        process.start()
        child_conn.close()
        worker = _Worker(
            index=index,
            name=f"shard-{index}",
            process=process,
            conn=parent_conn,
            generation=generation,
        )
        loop = asyncio.get_running_loop()
        loop.create_task(self._listen(worker))
        return worker

    async def _listen(self, worker: _Worker) -> None:
        """Pump one worker's pipe until EOF; EOF while running = crash."""
        loop = asyncio.get_running_loop()
        conn = worker.conn
        while True:
            try:
                message = await loop.run_in_executor(None, conn.recv)
            except (EOFError, OSError):
                break
            kind, payload = message
            if kind == "response":
                self._on_response(worker, payload)
            elif kind == "pong":
                worker.stats_doc = payload.get("stats")
            elif kind == "drained":
                worker.stats_doc = payload.get("stats")
                worker.metrics_doc = payload.get("metrics")
                worker.cache_doc = payload.get("cache")
                worker.spans = list(payload.get("spans", ()))
                if worker.drained is not None and not worker.drained.done():
                    worker.drained.set_result(payload)
        if not worker.dead and self._state == "running":
            self._on_worker_death(worker)

    async def start(self) -> None:
        """Spawn every worker and start the heartbeat sweep (idempotent)."""
        if self._state in ("draining", "closed"):
            raise ServiceClosedError("fleet has been drained; create a new one")
        if self._state == "running":
            return
        self._state = "running"
        for i in range(self.config.workers):
            worker = self._spawn(i, generation=0)
            self._workers[worker.name] = worker
        self._heartbeat = asyncio.get_running_loop().create_task(
            self._heartbeat_sweep()
        )

    async def __aenter__(self) -> "FleetCoordinator":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.drain()

    def stats(self) -> "dict[str, int]":
        """Fleet acceptance accounting; ``lost`` must always be 0."""
        in_flight = len(self._inflight)
        return {
            "dispatched": self._dispatched,
            "responded": self._responded,
            "in_flight": in_flight,
            "lost": self._dispatched - self._responded - in_flight,
        }

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------

    def _pick_shard(self, key: str, tried: "set[str]") -> "str | None":
        dead = {name for name, w in self._workers.items() if w.dead} | tried
        if self.config.router == "ring":
            try:
                return self.ring.route(key, exclude=dead)
            except ConfigurationError:
                return None
        live = [n for n in self.ring.shards if n not in dead]
        if not live:
            return None
        chosen = live[self._rr % len(live)]
        self._rr += 1
        return chosen

    def _dispatch(self, entry: _InFlight) -> bool:
        """Send ``entry`` to its shard; False when no live shard remains."""
        shard = self._pick_shard(entry.key, entry.tried)
        if shard is None:
            return False
        entry.shard = shard
        self.sink.incr("fleet.routed")
        self.sink.incr(f"fleet.routed.{shard}")
        self._workers[shard].conn.send(
            ("request", {"line": entry.line, "slot": entry.slot})
        )
        return True

    async def handle_line(self, line: str, *, line_number: int = 0) -> str:
        """Serve one raw JSONL request line; returns the response line.

        Parse failures return typed ``invalid`` lines (never raise);
        everything else is routed by solve fingerprint, deadline-armed,
        and dispatched.  A crash mid-flight follows ``on_crash``.
        """
        if self._state == "created":
            await self.start()
        if self._state != "running":
            return json.dumps(
                {
                    "id": f"line-{line_number}",
                    "outcome": "rejected_closed",
                    "error": f"fleet is {self._state}",
                    "error_type": "ServiceClosedError",
                },
                sort_keys=True,
            )
        try:
            parsed = parse_service_request(line, line_number=line_number)
        except InvalidServiceRequestError as exc:
            if self.tap is not None:
                seq = self.tap.request(line)
                self.tap.response(seq, exc.request_id, "invalid")
            return invalid_line(exc)
        self._dispatched += 1
        self.sink.incr("fleet.dispatched")
        budget = (
            parsed.deadline_s
            if parsed.deadline_s is not None
            else self.config.default_deadline_s
        )
        slot = self.board.acquire()
        loop = asyncio.get_running_loop()
        entry = _InFlight(
            request_id=parsed.request_id,
            key=parsed.solve.fingerprint(),
            line=line,
            shard="",
            slot=slot,
            future=loop.create_future(),
        )
        if budget is not None:
            entry.timer = loop.create_task(self._deadline_timer(slot, budget))
        self._inflight[parsed.request_id] = entry
        try:
            if not self._dispatch(entry):
                self.sink.incr("fleet.lost_shard")
                if self.tap is not None:
                    seq = self.tap.request(line)
                    self.tap.response(seq, parsed.request_id, "lost_shard")
                return _lost_shard_line(parsed.request_id, "none-live")
            # recorded post-dispatch so the event carries the shard it
            # actually landed on; still synchronous, so seqs stay in
            # global arrival order across the whole stream.
            seq = (
                self.tap.request(line, shard=entry.shard)
                if self.tap is not None
                else -1
            )
            response = await entry.future
            if self.tap is not None:
                try:
                    outcome = str(json.loads(response).get("outcome", "unknown"))
                except ValueError:
                    outcome = "unknown"
                self.tap.response(seq, parsed.request_id, outcome)
            return response
        finally:
            self._inflight.pop(parsed.request_id, None)
            if entry.timer is not None:
                entry.timer.cancel()
            self.board.release(slot)
            self._responded += 1

    async def _deadline_timer(self, slot: int, budget: float) -> None:
        await self.clock.sleep(budget)
        self.board.set(slot, ABORT_DEADLINE)

    def _on_response(self, worker: _Worker, payload: "dict[str, Any]") -> None:
        entry = self._inflight.get(str(payload.get("id")))
        if entry is None or entry.future.done():
            return  # late/duplicate response (e.g. raced a reroute)
        self.sink.incr(f"fleet.responded.{worker.name}")
        entry.future.set_result(str(payload["line"]))

    # ------------------------------------------------------------------
    # crash + restart
    # ------------------------------------------------------------------

    def _on_worker_death(self, worker: _Worker) -> None:
        if worker.dead:
            return
        worker.dead = True
        self.sink.incr("fleet.crashes")
        stranded = [e for e in self._inflight.values() if e.shard == worker.name]
        with self.sink.span(
            "fleet.crash", shard=worker.name, in_flight=len(stranded)
        ):
            for entry in stranded:
                if entry.future.done():
                    continue
                entry.tried.add(worker.name)
                if self.config.on_crash == "reroute" and self._dispatch(entry):
                    self.sink.incr("fleet.rerouted")
                    continue
                self.sink.incr("fleet.lost_shard")
                entry.future.set_result(
                    _lost_shard_line(entry.request_id, worker.name)
                )
        if self._state == "running":
            self._respawns.append(
                asyncio.get_running_loop().create_task(self._respawn(worker))
            )

    async def _respawn(self, dead: _Worker) -> None:
        await self.clock.sleep(self.config.restart_delay_s)
        if self._state != "running":
            return
        replacement = self._spawn(dead.index, generation=dead.generation + 1)
        self._workers[replacement.name] = replacement
        self.sink.incr("fleet.restarts")

    async def _heartbeat_sweep(self) -> None:
        """Poll worker liveness; the pipe EOF path catches most deaths
        first, this sweep is the backstop (and keeps pongs flowing)."""
        seq = 0
        while self._state == "running":
            await self.clock.sleep(self.heartbeat_s)
            seq += 1
            for worker in list(self._workers.values()):
                if worker.dead:
                    continue
                if not worker.process.is_alive():
                    self._on_worker_death(worker)
                    continue
                try:
                    worker.conn.send(("ping", seq))
                except (OSError, ValueError):
                    self._on_worker_death(worker)

    # ------------------------------------------------------------------
    # drain + rollup
    # ------------------------------------------------------------------

    async def drain(self) -> None:
        """Fleet-wide graceful drain; afterwards ``stats()["lost"] == 0``.

        Finishes everything in flight, cancels respawns and the
        heartbeat, asks each live worker to drain (collecting its
        stats/metrics/spans), and joins the processes.  Idempotent.
        """
        if self._state in ("draining", "closed"):
            return
        self._state = "draining"
        pending = [e.future for e in self._inflight.values()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._heartbeat is not None:
            self._heartbeat.cancel()
        for task in self._respawns:
            task.cancel()
        loop = asyncio.get_running_loop()
        for worker in self._workers.values():
            if worker.dead:
                continue
            worker.drained = loop.create_future()
            try:
                worker.conn.send(("drain", None))
            except (OSError, ValueError):
                worker.dead = True
                worker.drained = None
        waits = [
            w.drained
            for w in self._workers.values()
            if w.drained is not None
        ]
        if waits:
            await asyncio.wait(waits, timeout=30.0)
        for worker in self._workers.values():
            worker.conn.close()
            if worker.process.is_alive():
                await loop.run_in_executor(None, worker.process.join, 5.0)
            if worker.process.is_alive():
                worker.process.terminate()
        self._state = "closed"

    def merged_metrics(self) -> MetricsRegistry:
        """Fleet counters + every drained worker's registry, merged."""
        merged = MetricsRegistry()
        merged.merge(self.sink.metrics)
        for worker in self._workers.values():
            if worker.metrics_doc is not None:
                merged.merge(MetricsRegistry.from_snapshot(worker.metrics_doc))
        return merged

    def journal_records(
        self, meta: "dict[str, object] | None" = None
    ) -> "list[dict[str, object]]":
        """The combined shard-tagged journal across all drained workers."""
        tagged = [
            (name, self._workers[name].spans) for name in sorted(self._workers)
        ]
        tagged.append(
            ("fleet", [span.to_dict() for span in self.sink.tracer.spans])
        )
        return combined_journal_records(
            tagged, metrics=self.merged_metrics(), meta=meta
        )

    def fleet_report(self) -> "dict[str, Any]":
        """One JSON document: fleet stats, per-shard stats, merged metrics."""
        return {
            "schema": 1,
            "workers": self.config.workers,
            "router": self.config.router,
            "stats": self.stats(),
            "shards": {
                name: {
                    "generation": worker.generation,
                    "dead": worker.dead,
                    "stats": worker.stats_doc,
                    "cache": worker.cache_doc,
                }
                for name, worker in sorted(self._workers.items())
            },
            "metrics": self.merged_metrics().snapshot(),
        }


async def serve_fleet_lines(
    coordinator: FleetCoordinator, lines: "Iterable[str]"
) -> "list[str]":
    """Serve a JSONL stream through the fleet; responses in input order.

    The fleet counterpart of :func:`repro.service.protocol.serve_lines`
    — same skip-blank / invalid-line semantics, same diffable output
    ordering, but each request lands on its consistent-hash shard.
    """
    loop = asyncio.get_running_loop()
    tasks: "list[asyncio.Task[str]]" = []
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        tasks.append(
            loop.create_task(coordinator.handle_line(line, line_number=number))
        )
    return [await task for task in tasks]
