"""The fleet worker: one child process hosting a full solve service.

Each worker owns a complete serving stack — a
:class:`~repro.engine.jobs.MatchingEngine` with its own two-tier
:class:`~repro.engine.cache.ResultCache`, a
:class:`~repro.service.pipeline.SolveService`, and a
:class:`~repro.obs.record.Recorder` — and speaks a tiny message
protocol with the coordinator over a :mod:`multiprocessing` pipe:

coordinator -> worker
    ``("request", {"line": <raw JSONL request>, "slot": int})``
        serve one request; the slot indexes the shared abort-flag array
        the worker samples between pipeline and engine stages;
    ``("ping", seq)``
        heartbeat probe;
    ``("drain", None)``
        graceful shutdown: finish everything, ship observability, exit.

worker -> coordinator
    ``("response", {"id": ..., "line": <response JSONL>})``
    ``("pong", {"seq": ..., "stats": service.stats()})``
    ``("drained", {"stats": ..., "metrics": <registry snapshot>,
    "cache": <CacheStats.to_dict()>, "spans": [<span dicts>]})``

Requests travel as raw protocol lines (re-parsed here with
:func:`~repro.service.protocol.parse_service_request`), never as
pickled objects — the wire format is the contract, and a malformed
line degrades to a typed ``invalid`` response exactly as it would on a
single-service ``repro serve``.  The request's own ``deadline_s`` is
*stripped* before dispatch: the coordinator owns every deadline timer
and cancels through the shared abort flag, so worker clocks never need
to agree with the coordinator's.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Sequence

from repro.engine.cache import ResultCache
from repro.engine.jobs import MatchingEngine
from repro.exceptions import InvalidServiceRequestError
from repro.fleet.abort import make_abort_check
from repro.obs.metrics import DEFAULT_TIME_EDGES
from repro.obs.record import Recorder
from repro.service.pipeline import ServiceConfig, ServiceRequest, SolveService
from repro.service.protocol import (
    invalid_line,
    parse_service_request,
    response_line,
)

__all__ = ["worker_main"]


def worker_main(
    index: int,
    conn: Any,
    flags: "Sequence[int]",
    config_doc: "dict[str, Any]",
    cache_dir: "str | None" = None,
) -> None:
    """Child-process entry point: serve until drained or the pipe closes.

    ``conn`` is the worker end of the coordinator's duplex pipe;
    ``flags`` is the shared abort array (zero-copy view of the
    coordinator's :class:`~repro.fleet.abort.SharedAbortBoard`);
    ``config_doc`` carries the plain-data
    :class:`~repro.service.pipeline.ServiceConfig` fields (the cost
    model is not picklable and fleets do not model costs on real
    clocks).  ``cache_dir`` optionally points every worker at one
    shared disk cache directory — safe because the cache's writes are
    atomic per writer.
    """
    asyncio.run(_serve(index, conn, flags, config_doc, cache_dir))


async def _serve(
    index: int,
    conn: Any,
    flags: "Sequence[int]",
    config_doc: "dict[str, Any]",
    cache_dir: "str | None",
) -> None:
    recorder = Recorder()
    recorder.metrics.register_histogram("service.latency.seconds", DEFAULT_TIME_EDGES)
    recorder.metrics.register_histogram(
        "service.queue_wait.seconds", DEFAULT_TIME_EDGES
    )
    engine = MatchingEngine(
        backend=str(config_doc.get("engine_backend", "serial")),
        cache=ResultCache(
            max_entries=int(config_doc.get("cache_entries", 1024)),
            disk_dir=cache_dir,
        ),
        sink=recorder,
    )
    service = SolveService(
        engine,
        config=ServiceConfig(
            queue_capacity=int(config_doc.get("queue_capacity", 64)),
            policy=str(config_doc.get("policy", "reject")),
            workers=int(config_doc.get("workers", 2)),
        ),
        sink=recorder,
    )
    service.start()

    loop = asyncio.get_running_loop()
    inbox: "asyncio.Queue[tuple[str, Any]]" = asyncio.Queue()

    def pump() -> None:
        # blocking pipe reads happen on this thread; messages hop onto
        # the event loop thread-safely.  EOF means the coordinator is
        # gone (or crashed) — treated as an implicit drain.
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                loop.call_soon_threadsafe(inbox.put_nowait, ("eof", None))
                return
            loop.call_soon_threadsafe(inbox.put_nowait, message)

    threading.Thread(target=pump, name=f"fleet-worker-{index}-pump", daemon=True).start()

    async def handle_one(payload: "dict[str, Any]") -> None:
        line = str(payload["line"])
        slot = int(payload["slot"])
        try:
            parsed = parse_service_request(line)
        except InvalidServiceRequestError as exc:
            conn.send(("response", {"id": exc.request_id, "line": invalid_line(exc)}))
            return
        request = ServiceRequest(
            request_id=parsed.request_id,
            solve=parsed.solve,
            priority=parsed.priority,
            client=parsed.client,
            deadline_s=None,  # the coordinator owns the timer
            abort_check=make_abort_check(flags, slot, parsed.request_id),
        )
        response = await service.handle(request)
        conn.send(
            ("response", {"id": request.request_id, "line": response_line(response)})
        )

    pending: "set[asyncio.Task[None]]" = set()
    try:
        while True:
            kind, payload = await inbox.get()
            if kind == "request":
                task = loop.create_task(handle_one(payload))
                pending.add(task)
                task.add_done_callback(pending.discard)
            elif kind == "ping":
                conn.send(("pong", {"seq": payload, "stats": service.stats()}))
            elif kind in ("drain", "eof"):
                break
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        await service.drain()
        engine.close()
        if kind == "drain":
            conn.send(
                (
                    "drained",
                    {
                        "stats": service.stats(),
                        "metrics": recorder.metrics.snapshot(),
                        "cache": engine.cache.stats.to_dict(),
                        "spans": [span.to_dict() for span in recorder.tracer.spans],
                    },
                )
            )
    finally:
        try:
            conn.close()
        except OSError:
            pass
