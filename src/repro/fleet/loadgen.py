"""Fleet load soaks: the single-service harness, sharded.

:func:`run_fleet_load` is :func:`repro.service.loadgen.run_load` for a
:class:`~repro.fleet.simfleet.SimulatedFleet`: the same seeded request
stream (via :func:`~repro.service.loadgen.build_requests`, so a fleet
soak and a single-service soak over the same profile see *identical*
requests), the same arrival disciplines (open / closed / bursty /
sequential, via the shared
:func:`~repro.service.loadgen.arrival_gaps` schedule), the same virtual
clock determinism contract — plus crash injection and the per-shard
locality block in :attr:`~repro.service.loadgen.LoadReport.shards`.

``repro load --fleet N`` and ``make fleet-smoke`` sit on top of this;
the double-run determinism gate compares two reports' ``outcome_by_id``
maps byte-for-byte.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.fleet.simfleet import CrashPlan, FleetConfig, SimulatedFleet
from repro.obs.capture import CaptureWriter
from repro.obs.record import Recorder
from repro.service.clock import Clock, RealClock, VirtualClock, run_virtual
from repro.service.loadgen import (
    LoadProfile,
    LoadReport,
    arrival_times,
    build_requests,
    capture_context,
)
from repro.service.pipeline import (
    DEFAULT_PRIORITIES,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.protocol import request_line

__all__ = ["fleet_capture_context", "run_fleet_load"]

#: dispatch-time capture hooks (see ``_fleet_capture_hooks``).
_CaptureHooks = tuple[
    Callable[[ServiceRequest], int],
    Callable[[int, "asyncio.Task[ServiceResponse]"], None],
]


def fleet_capture_context(
    *,
    kind: str,
    virtual: bool,
    profile: "LoadProfile | None",
    config: FleetConfig,
    crashes: "tuple[CrashPlan, ...] | list[CrashPlan]" = (),
) -> "dict[str, Any]":
    """Capture context header for a fleet run.

    Extends the single-service :func:`~repro.service.loadgen.
    capture_context` shape with the fleet topology and the armed crash
    plans, so a replay can rebuild the same ring, the same per-shard
    services, and re-arm the same mid-run crash.
    """
    context = capture_context(kind=kind, virtual=virtual, profile=profile)
    context["fleet"] = {
        "workers": config.workers,
        "vnodes": config.vnodes,
        "router": config.router,
        "queue_capacity": config.queue_capacity,
        "policy": config.policy,
        "shard_workers": config.shard_workers,
        "default_deadline_s": config.default_deadline_s,
        "on_crash": config.on_crash,
        "restart_delay_s": config.restart_delay_s,
        "cache_entries": config.cache_entries,
        "engine_backend": config.engine_backend,
    }
    context["crashes"] = [
        {"shard_index": plan.shard_index, "at_s": plan.at_s} for plan in crashes
    ]
    return context


def _fleet_capture_hooks(
    tap: CaptureWriter,
    fleet: SimulatedFleet,
    requests: "list[ServiceRequest]",
    costs: "Mapping[str, float]",
) -> _CaptureHooks:
    """Wire-boundary recording for the fleet drivers.

    Each request event is tagged with its *home* ring shard (the pure
    routing function of its fingerprint — independent of transient
    crash state), which is what the per-shard capture merge sorts on.
    """
    lines = {r.request_id: request_line(r) for r in requests}

    def record(request: ServiceRequest) -> int:
        shard = None
        if fleet.config.router == "ring":
            shard = fleet.ring.route(fleet.route_key(request))
        return tap.request(
            lines[request.request_id],
            shard=shard,
            cost_s=costs[request.request_id],
        )

    def on_done(seq: int, task: "asyncio.Task[ServiceResponse]") -> None:
        if task.cancelled() or task.exception() is not None:
            return
        response = task.result()
        tap.response(seq, response.request_id, response.outcome)

    return record, on_done


async def _drive_timed(
    fleet: SimulatedFleet,
    clock: Clock,
    profile: LoadProfile,
    requests: "list[ServiceRequest]",
    *,
    hooks: "_CaptureHooks | None" = None,
) -> "list[ServiceResponse]":
    """Schedule-driven driver: the same arrival timeline as ``run_load``."""
    times = arrival_times(profile, len(requests))
    tasks: list[asyncio.Task[ServiceResponse]] = []
    loop = asyncio.get_running_loop()
    origin = clock.now()
    for request, due in zip(requests, times):
        await clock.sleep_until(origin + due)
        task = loop.create_task(fleet.handle(request))
        if hooks is not None:
            record, on_done = hooks
            seq = record(request)
            task.add_done_callback(lambda t, _seq=seq: on_done(_seq, t))
        tasks.append(task)
    return list(await asyncio.gather(*tasks))


async def _drive_closed(
    fleet: SimulatedFleet,
    profile: LoadProfile,
    requests: "list[ServiceRequest]",
    *,
    hooks: "_CaptureHooks | None" = None,
) -> "list[ServiceResponse]":
    """Closed-loop driver: ``concurrency`` clients, one in flight each."""
    pending = list(reversed(requests))
    responses: dict[str, ServiceResponse] = {}
    loop = asyncio.get_running_loop()

    async def client() -> None:
        while pending:
            request = pending.pop()
            if hooks is not None:
                record, on_done = hooks
                seq = record(request)
                task = loop.create_task(fleet.handle(request))
                task.add_done_callback(lambda t, _seq=seq: on_done(_seq, t))
                responses[request.request_id] = await task
            else:
                responses[request.request_id] = await fleet.handle(request)

    await asyncio.gather(*(client() for _ in range(profile.concurrency)))
    return [responses[r.request_id] for r in requests]


def _quantiles(recorder: Recorder, name: str) -> "dict[str, float]":
    hist = recorder.metrics.histogram(name)
    if hist is None or hist.count == 0:
        return {}
    out: dict[str, float] = {}
    for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
        value = hist.quantile(q)
        if value is not None:
            out[label] = float(value)
    out["mean"] = hist.sum / hist.count
    out["max"] = float(hist.max if hist.max is not None else 0.0)
    return out


def run_fleet_load(
    profile: LoadProfile,
    *,
    config: "FleetConfig | None" = None,
    crashes: "tuple[CrashPlan, ...] | list[CrashPlan]" = (),
    virtual: bool = True,
    journal_path: "str | None" = None,
    capture: "str | Path | None" = None,
) -> LoadReport:
    """Run one fleet soak and return its :class:`~repro.service.loadgen.LoadReport`.

    A fresh fleet (every shard with its own engine and cold cache) is
    built per run, driven with the profile's arrival schedule, crash
    plans are armed on the shared clock, and the fleet drains before the
    report is cut — so ``lost == 0`` holds even across an injected
    mid-run shard crash.  ``virtual=True`` runs the whole soak on the
    :class:`~repro.service.clock.VirtualClock` (deterministic,
    near-instant); ``journal_path`` additionally writes the combined
    shard-tagged journal; ``capture`` records the soak at the wire
    boundary (every request tagged with its home ring shard, the armed
    crash plans in the context header) for ``repro replay``.
    """
    base = config if config is not None else FleetConfig()
    requests, costs = build_requests(profile, dict(DEFAULT_PRIORITIES))
    # replace() keeps every future FleetConfig field instead of a
    # field-by-field rebuild that would silently drop new ones.
    fleet_config = replace(base, cost_model=lambda req: costs[req.request_id])
    clock: Clock = VirtualClock() if virtual else RealClock()
    fleet = SimulatedFleet(fleet_config, clock=clock, crashes=crashes)

    writer: "CaptureWriter | None" = None
    hooks: "_CaptureHooks | None" = None
    if capture is not None:
        writer = CaptureWriter(
            capture,
            now=clock.now,
            start=0.0 if virtual else None,
            context=fleet_capture_context(
                kind="fleet-load",
                virtual=virtual,
                profile=profile,
                config=base,
                crashes=crashes,
            ),
        )
        hooks = _fleet_capture_hooks(writer, fleet, requests, costs)

    async def soak() -> "tuple[list[ServiceResponse], float]":
        start = clock.now()
        async with fleet:
            if profile.mode == "closed":
                responses = await _drive_closed(
                    fleet, profile, requests, hooks=hooks
                )
            else:
                responses = await _drive_timed(
                    fleet, clock, profile, requests, hooks=hooks
                )
        return responses, clock.now() - start

    async def main() -> "tuple[list[ServiceResponse], float]":
        if isinstance(clock, VirtualClock):
            return await run_virtual(clock, soak())
        return await soak()

    try:
        responses, duration = asyncio.run(main())
    finally:
        if writer is not None:
            writer.close()

    outcomes: dict[str, int] = {}
    outcome_by_id: dict[str, str] = {}
    for response in responses:
        outcomes[response.outcome] = outcomes.get(response.outcome, 0) + 1
        outcome_by_id[response.request_id] = response.outcome
    stats = fleet.stats()
    merged = Recorder(metrics=fleet.merged_metrics())
    counters: dict[str, int] = {
        name: value
        for name, value in merged.metrics.counters().items()
        if name.startswith(("service.", "fleet."))
    }
    shards: dict[str, Any] = fleet.shard_report()
    if journal_path is not None:
        from repro.fleet.simfleet import write_fleet_journal

        write_fleet_journal(
            journal_path,
            fleet.journal_records(
                meta={
                    "kind": "fleet-load",
                    "workers": fleet_config.workers,
                    "router": fleet_config.router,
                    "requests": profile.requests,
                    "seed": profile.seed,
                }
            ),
        )
    return LoadReport(
        requests=profile.requests,
        seed=profile.seed,
        mode=profile.mode,
        virtual=virtual,
        duration_s=duration,
        accepted=stats["dispatched"],
        responded=stats["responded"],
        lost=stats["lost"],
        outcomes=outcomes,
        outcome_by_id=outcome_by_id,
        latency=_quantiles(merged, "service.latency.seconds"),
        queue_wait=_quantiles(merged, "service.queue_wait.seconds"),
        counters=counters,
        shards=shards,
    )
