"""Fleet load soaks: the single-service harness, sharded.

:func:`run_fleet_load` is :func:`repro.service.loadgen.run_load` for a
:class:`~repro.fleet.simfleet.SimulatedFleet`: the same seeded request
stream (via :func:`~repro.service.loadgen.build_requests`, so a fleet
soak and a single-service soak over the same profile see *identical*
requests), the same arrival disciplines (open / closed / bursty /
sequential, via the shared
:func:`~repro.service.loadgen.arrival_gaps` schedule), the same virtual
clock determinism contract — plus crash injection and the per-shard
locality block in :attr:`~repro.service.loadgen.LoadReport.shards`.

``repro load --fleet N`` and ``make fleet-smoke`` sit on top of this;
the double-run determinism gate compares two reports' ``outcome_by_id``
maps byte-for-byte.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.fleet.simfleet import CrashPlan, FleetConfig, SimulatedFleet
from repro.obs.record import Recorder
from repro.service.clock import Clock, RealClock, VirtualClock, run_virtual
from repro.service.loadgen import (
    LoadProfile,
    LoadReport,
    arrival_gaps,
    build_requests,
)
from repro.service.pipeline import (
    DEFAULT_PRIORITIES,
    ServiceRequest,
    ServiceResponse,
)

__all__ = ["run_fleet_load"]


async def _drive_timed(
    fleet: SimulatedFleet,
    clock: Clock,
    profile: LoadProfile,
    requests: "list[ServiceRequest]",
) -> "list[ServiceResponse]":
    """Schedule-driven driver: the same gap stream as ``run_load``."""
    gaps = arrival_gaps(profile, len(requests))
    tasks: list[asyncio.Task[ServiceResponse]] = []
    loop = asyncio.get_running_loop()
    for request, gap in zip(requests, gaps):
        await clock.sleep(gap)
        tasks.append(loop.create_task(fleet.handle(request)))
    return list(await asyncio.gather(*tasks))


async def _drive_closed(
    fleet: SimulatedFleet,
    profile: LoadProfile,
    requests: "list[ServiceRequest]",
) -> "list[ServiceResponse]":
    """Closed-loop driver: ``concurrency`` clients, one in flight each."""
    pending = list(reversed(requests))
    responses: dict[str, ServiceResponse] = {}

    async def client() -> None:
        while pending:
            request = pending.pop()
            responses[request.request_id] = await fleet.handle(request)

    await asyncio.gather(*(client() for _ in range(profile.concurrency)))
    return [responses[r.request_id] for r in requests]


def _quantiles(recorder: Recorder, name: str) -> "dict[str, float]":
    hist = recorder.metrics.histogram(name)
    if hist is None or hist.count == 0:
        return {}
    out: dict[str, float] = {}
    for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
        value = hist.quantile(q)
        if value is not None:
            out[label] = float(value)
    out["mean"] = hist.sum / hist.count
    out["max"] = float(hist.max if hist.max is not None else 0.0)
    return out


def run_fleet_load(
    profile: LoadProfile,
    *,
    config: "FleetConfig | None" = None,
    crashes: "tuple[CrashPlan, ...] | list[CrashPlan]" = (),
    virtual: bool = True,
    journal_path: "str | None" = None,
) -> LoadReport:
    """Run one fleet soak and return its :class:`~repro.service.loadgen.LoadReport`.

    A fresh fleet (every shard with its own engine and cold cache) is
    built per run, driven with the profile's arrival schedule, crash
    plans are armed on the shared clock, and the fleet drains before the
    report is cut — so ``lost == 0`` holds even across an injected
    mid-run shard crash.  ``virtual=True`` runs the whole soak on the
    :class:`~repro.service.clock.VirtualClock` (deterministic,
    near-instant); ``journal_path`` additionally writes the combined
    shard-tagged journal.
    """
    base = config if config is not None else FleetConfig()
    requests, costs = build_requests(profile, dict(DEFAULT_PRIORITIES))
    fleet_config = FleetConfig(
        workers=base.workers,
        vnodes=base.vnodes,
        router=base.router,
        queue_capacity=base.queue_capacity,
        policy=base.policy,
        shard_workers=base.shard_workers,
        default_deadline_s=base.default_deadline_s,
        cost_model=lambda req: costs[req.request_id],
        on_crash=base.on_crash,
        restart_delay_s=base.restart_delay_s,
        cache_entries=base.cache_entries,
        engine_backend=base.engine_backend,
    )
    clock: Clock = VirtualClock() if virtual else RealClock()
    fleet = SimulatedFleet(fleet_config, clock=clock, crashes=crashes)

    async def soak() -> "tuple[list[ServiceResponse], float]":
        start = clock.now()
        async with fleet:
            if profile.mode == "closed":
                responses = await _drive_closed(fleet, profile, requests)
            else:
                responses = await _drive_timed(fleet, clock, profile, requests)
        return responses, clock.now() - start

    async def main() -> "tuple[list[ServiceResponse], float]":
        if isinstance(clock, VirtualClock):
            return await run_virtual(clock, soak())
        return await soak()

    responses, duration = asyncio.run(main())

    outcomes: dict[str, int] = {}
    outcome_by_id: dict[str, str] = {}
    for response in responses:
        outcomes[response.outcome] = outcomes.get(response.outcome, 0) + 1
        outcome_by_id[response.request_id] = response.outcome
    stats = fleet.stats()
    merged = Recorder(metrics=fleet.merged_metrics())
    counters: dict[str, int] = {
        name: value
        for name, value in merged.metrics.counters().items()
        if name.startswith(("service.", "fleet."))
    }
    shards: dict[str, Any] = fleet.shard_report()
    if journal_path is not None:
        from repro.fleet.simfleet import write_fleet_journal

        write_fleet_journal(
            journal_path,
            fleet.journal_records(
                meta={
                    "kind": "fleet-load",
                    "workers": fleet_config.workers,
                    "router": fleet_config.router,
                    "requests": profile.requests,
                    "seed": profile.seed,
                }
            ),
        )
    return LoadReport(
        requests=profile.requests,
        seed=profile.seed,
        mode=profile.mode,
        virtual=virtual,
        duration_s=duration,
        accepted=stats["dispatched"],
        responded=stats["responded"],
        lost=stats["lost"],
        outcomes=outcomes,
        outcome_by_id=outcome_by_id,
        latency=_quantiles(merged, "service.latency.seconds"),
        queue_wait=_quantiles(merged, "service.queue_wait.seconds"),
        counters=counters,
        shards=shards,
    )
