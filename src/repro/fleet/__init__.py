"""``repro.fleet``: a sharded multi-process (or simulated) solve fleet.

One coordinator, N shards — each shard a full
:class:`~repro.service.pipeline.SolveService` +
:class:`~repro.engine.jobs.MatchingEngine` with its own two-tier result
cache.  Requests route over a consistent-hash ring keyed on the solve
fingerprint (:mod:`repro.fleet.ring`), so a hot instance always lands
on the shard whose cache already holds it; per-request deadlines cancel
work across the process boundary through shared-memory abort flags
(:mod:`repro.fleet.abort`); crashed shards re-route or complete their
in-flight work as typed ``lost_shard`` responses and respawn cold; a
fleet-wide drain preserves the zero-lost invariant and folds every
shard's metrics and spans into one merged report and one combined
journal.

Two interchangeable fleets share all of that logic:

* :class:`~repro.fleet.coordinator.FleetCoordinator` — real child
  processes (``repro serve --fleet N``);
* :class:`~repro.fleet.simfleet.SimulatedFleet` — in-process shards on
  one (virtual) clock, byte-deterministic
  (``repro load --fleet N --check``, ``make fleet-smoke``).

See docs/SERVICE.md ("Fleet mode") for the architecture tour.
"""

from repro.fleet.abort import (
    ABORT_DEADLINE,
    CLEAR,
    LocalAbortBoard,
    SharedAbortBoard,
    make_abort_check,
)
from repro.fleet.coordinator import FleetCoordinator, serve_fleet_lines
from repro.fleet.loadgen import fleet_capture_context, run_fleet_load
from repro.fleet.ring import DEFAULT_VNODES, HashRing, stable_hash_64
from repro.fleet.simfleet import (
    FLEET_OUTCOMES,
    ROUTERS,
    CrashPlan,
    FleetConfig,
    SimulatedFleet,
    combined_journal_records,
    write_fleet_journal,
)

__all__ = [
    "ABORT_DEADLINE",
    "CLEAR",
    "DEFAULT_VNODES",
    "FLEET_OUTCOMES",
    "ROUTERS",
    "CrashPlan",
    "FleetConfig",
    "FleetCoordinator",
    "HashRing",
    "LocalAbortBoard",
    "SharedAbortBoard",
    "SimulatedFleet",
    "combined_journal_records",
    "fleet_capture_context",
    "make_abort_check",
    "run_fleet_load",
    "serve_fleet_lines",
    "stable_hash_64",
    "write_fleet_journal",
]
