"""Consistent-hash ring: fingerprint -> shard routing with vnodes.

The fleet's cache-locality story rests on this module: requests are
keyed by their solve fingerprint, and the ring maps each fingerprint to
one shard so repeated requests for a hot instance always land on the
same worker — whose two-tier :class:`~repro.engine.cache.ResultCache`
then answers them from memory.  Round-robin routing would spread a hot
fingerprint over every shard, paying one cold solve *per shard* and
evicting N times as much; the ``fleet.shard_affinity`` perf workload
pins the measured gap.

Each shard contributes :data:`DEFAULT_VNODES` virtual points placed by
a keyed BLAKE2b hash (stable across processes and Python versions —
never the salted builtin ``hash``).  Lookups bisect the sorted point
list and walk clockwise; :meth:`HashRing.route` accepts an ``exclude``
set so a dead shard's keys spill to the next live point on the ring
(and *only* its keys move — the minimal-remapping property the fleet's
restart path and the property tests both rely on).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.exceptions import ConfigurationError

__all__ = ["DEFAULT_VNODES", "HashRing", "stable_hash_64"]

#: virtual nodes per shard; 128 keeps the max/min shard-load ratio
#: under ~1.6 for small fleets (the balance property test's bound).
DEFAULT_VNODES = 128


def stable_hash_64(text: str) -> int:
    """64-bit BLAKE2b hash of ``text`` — stable across processes.

    The builtin ``hash`` is salted per interpreter (PYTHONHASHSEED), so
    ring placement built on it would differ between the coordinator and
    its workers; every ring point and key goes through this instead.
    """
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over named shards.

    Parameters
    ----------
    shards:
        Initial shard names (order-insensitive; placement depends only
        on the names themselves).
    vnodes:
        Virtual points per shard.  More vnodes = better balance at the
        cost of a larger sorted point list; lookups stay O(log(S * V)).
    """

    def __init__(
        self, shards: "list[str] | tuple[str, ...]" = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._shards: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for shard in shards:
            self.add(shard)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    @property
    def shards(self) -> "list[str]":
        """Member shard names, sorted."""
        return sorted(self._shards)

    def add(self, shard: str) -> None:
        """Add ``shard`` (all its vnodes) to the ring."""
        if not shard:
            raise ConfigurationError("shard name must be non-empty")
        if shard in self._shards:
            raise ConfigurationError(f"shard {shard!r} is already on the ring")
        self._shards.add(shard)
        for v in range(self.vnodes):
            self._points.append((stable_hash_64(f"{shard}#{v}"), shard))
        self._points.sort()

    def remove(self, shard: str) -> None:
        """Remove ``shard``; only its keys remap (to their next points)."""
        if shard not in self._shards:
            raise ConfigurationError(f"shard {shard!r} is not on the ring")
        self._shards.discard(shard)
        self._points = [(p, s) for p, s in self._points if s != shard]

    def route(self, key: str, *, exclude: "frozenset[str] | set[str]" = frozenset()) -> str:
        """Shard owning ``key``: first ring point clockwise of its hash.

        ``exclude`` skips (temporarily) dead shards without mutating the
        ring, so keys owned by live shards keep their placement and only
        the dead shard's keys spill to their next live point — restart
        then restores the original routing exactly.
        """
        candidates = self._shards - set(exclude)
        if not candidates:
            raise ConfigurationError(
                "no live shard to route to "
                f"(ring has {sorted(self._shards)}, excluded {sorted(exclude)})"
            )
        point = stable_hash_64(key)
        start = bisect_right(self._points, (point, "￿"))
        n = len(self._points)
        for i in range(n):
            _, shard = self._points[(start + i) % n]
            if shard in candidates:
                return shard
        raise ConfigurationError("unreachable: candidates verified non-empty")

    def load_map(self, keys: "list[str]") -> "dict[str, int]":
        """Keys-per-shard histogram for ``keys`` (balance diagnostics)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
