"""The deterministic in-process fleet: N sharded services, one clock.

The real fleet (:mod:`repro.fleet.coordinator`) runs workers in child
processes and therefore cannot run under the
:class:`~repro.service.clock.VirtualClock` — cross-process scheduling
is not a pure function of the workload.  This module is the fleet's
*simulation twin*: the same consistent-hash routing, the same
abort-flag protocol (via :class:`~repro.fleet.abort.LocalAbortBoard`),
the same crash/restart and drain semantics — but every shard is an
in-process :class:`~repro.service.pipeline.SolveService` sharing one
clock, so a 2,000-request soak with a mid-run shard crash executes in
milliseconds and produces byte-identical outcome maps across runs.
``repro load --fleet N --check`` and ``make fleet-smoke`` are built on
it.

Shard lifecycle under crash injection:

* a :class:`CrashPlan` kills shard *i* at virtual time *t*: its service
  is hard-stopped (:meth:`~repro.service.pipeline.SolveService.kill`),
  its in-flight dispatches are cancelled, and each affected request is
  either **re-routed** to the next live shard on the ring or completed
  as a typed ``lost_shard`` response — never silently dropped;
* while the shard is down (the modelled detection + restart window),
  the ring's ``exclude`` routing spills *only its keys* to their next
  points — every other shard's cache stays warm;
* the replacement shard comes back cold on the same ring position, so
  routing converges to the original placement the moment it is live.

Observability rolls up at drain: per-shard ``service.*`` registries
merge into one fleet registry
(:meth:`~repro.obs.metrics.MetricsRegistry.merge` with identical-bucket
validation) and per-shard spans concatenate into a single combined
journal with a ``shard`` attribute on every span.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine import validate_backend
from repro.engine.cache import ResultCache
from repro.engine.jobs import MatchingEngine
from repro.exceptions import ConfigurationError, ReproError, ServiceClosedError
from repro.fleet.abort import ABORT_DEADLINE, LocalAbortBoard, make_abort_check
from repro.fleet.ring import DEFAULT_VNODES, HashRing
from repro.obs.journal import JOURNAL_SCHEMA
from repro.obs.metrics import DEFAULT_TIME_EDGES, MetricsRegistry
from repro.obs.record import Recorder
from repro.obs.trace import Tracer
from repro.service.clock import Clock, RealClock
from repro.service.pipeline import (
    DEFAULT_PRIORITIES,
    OUTCOMES,
    ServiceConfig,
    ServiceRequest,
    ServiceResponse,
    SolveService,
)

__all__ = [
    "FLEET_OUTCOMES",
    "ROUTERS",
    "CrashPlan",
    "FleetConfig",
    "SimulatedFleet",
    "combined_journal_records",
    "write_fleet_journal",
]

#: every terminal outcome a fleet response can carry: the service
#: outcomes plus ``lost_shard`` (in flight on a crashed shard, not
#: re-routed).
FLEET_OUTCOMES = OUTCOMES + ("lost_shard",)

#: request-routing disciplines.  ``ring`` is the production consistent
#: hash; ``round_robin`` exists as the locality-blind baseline the
#: ``fleet.shard_affinity`` perf workload measures against.
ROUTERS = ("ring", "round_robin")

#: crash-recovery disciplines for requests in flight on a dead shard.
ON_CRASH = ("reroute", "lost_shard")


@dataclass(frozen=True)
class CrashPlan:
    """Deterministic crash injection: kill ``shard_index`` at ``at_s``.

    ``at_s`` is a clock reading (virtual seconds under the load
    harness).  One plan kills one shard once; the fleet restarts it
    after the configured detection window.
    """

    shard_index: int
    at_s: float

    def __post_init__(self) -> None:
        if self.shard_index < 0:
            raise ConfigurationError(
                f"shard_index must be >= 0, got {self.shard_index}"
            )
        if self.at_s < 0:
            raise ConfigurationError(f"at_s must be >= 0, got {self.at_s}")


@dataclass(frozen=True)
class FleetConfig:
    """Tunables for one fleet (simulated or real).

    Attributes
    ----------
    workers:
        Shard count (each shard hosts a full service + engine + cache).
    vnodes:
        Virtual points per shard on the consistent-hash ring.
    router:
        ``ring`` (consistent hashing on the solve fingerprint) or
        ``round_robin`` (locality-blind baseline).
    queue_capacity / policy / shard_workers:
        Per-shard :class:`~repro.service.pipeline.ServiceConfig` knobs.
    default_deadline_s:
        Fleet-enforced deadline budget for requests without one; the
        coordinator owns the timer and aborts through the shared flag.
    cost_model:
        Optional modelled service time, threaded into every shard.
    on_crash:
        ``reroute`` re-dispatches a dead shard's in-flight requests to
        the next live shard; ``lost_shard`` completes them with the
        typed ``lost_shard`` outcome.
    restart_delay_s:
        Modelled crash-detection + restart window; while it runs, the
        dead shard's keys spill to their next ring points.
    cache_entries:
        Per-shard in-memory result-cache bound.
    engine_backend:
        Executor backend each shard's :class:`MatchingEngine` dispatches
        solves on — one of :data:`repro.engine.BACKENDS`.  ``serial``
        (the default) solves inline on the shard's event-loop thread;
        ``thread``/``process`` give every shard its own pool.
    shared_cache_dir:
        Optional directory every shard's :class:`ResultCache` spills to
        and reads from — the cross-shard warm-start tier (one shard's
        solve becomes every shard's disk hit).  ``None`` keeps caches
        strictly shard-private.
    deterministic_spans:
        Time span durations with the fleet clock instead of the
        wall-clock ``perf_counter``.  Under a virtual clock this makes
        the combined journal byte-identical across runs — durations
        included — which is what lets ``repro replay --check`` diff
        whole journals instead of just their structure.
    """

    workers: int = 4
    vnodes: int = DEFAULT_VNODES
    router: str = "ring"
    queue_capacity: int = 64
    policy: str = "reject"
    shard_workers: int = 2
    default_deadline_s: "float | None" = None
    cost_model: "Callable[[ServiceRequest], float] | None" = None
    on_crash: str = "reroute"
    restart_delay_s: float = 0.05
    cache_entries: int = 1024
    engine_backend: str = "serial"
    shared_cache_dir: "str | None" = None
    deterministic_spans: bool = False

    def __post_init__(self) -> None:
        validate_backend(self.engine_backend)
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.router not in ROUTERS:
            raise ConfigurationError(
                f"unknown router {self.router!r}; choose from {ROUTERS}"
            )
        if self.on_crash not in ON_CRASH:
            raise ConfigurationError(
                f"unknown on_crash policy {self.on_crash!r}; choose from {ON_CRASH}"
            )
        if self.restart_delay_s < 0:
            raise ConfigurationError(
                f"restart_delay_s must be >= 0, got {self.restart_delay_s}"
            )

    def service_config(self) -> ServiceConfig:
        """The per-shard service configuration this fleet config implies.

        Deadlines are deliberately *not* delegated to the shard: the
        fleet owns the timer and cancels through the abort flag, which
        is the protocol that also works across a process boundary.
        """
        return ServiceConfig(
            queue_capacity=self.queue_capacity,
            policy=self.policy,
            workers=self.shard_workers,
            priorities=dict(DEFAULT_PRIORITIES),
            cost_model=self.cost_model,
        )


@dataclass
class _Shard:
    """One live shard: service + engine + its own observability."""

    name: str
    service: SolveService
    engine: MatchingEngine
    recorder: Recorder
    dead: bool = False
    generation: int = 0
    routed: int = 0
    #: request_id -> the inner dispatch task, cancelled on crash.
    pending: dict[str, "asyncio.Task[ServiceResponse]"] = field(default_factory=dict)


def _lost_shard_response(request: ServiceRequest, shard: str) -> ServiceResponse:
    """The typed terminal response for a request that died with its shard."""
    return ServiceResponse(
        request_id=request.request_id,
        outcome="lost_shard",
        priority=request.priority,
        client=request.client,
        error=f"request {request.request_id!r}: shard {shard!r} crashed mid-flight",
        error_type="LostShardError",
        stage="shard",
    )


class SimulatedFleet:
    """N sharded solve services behind one consistent-hash router.

    Parameters
    ----------
    config:
        :class:`FleetConfig` tunables.
    clock:
        Shared time source for every shard (pass a
        :class:`~repro.service.clock.VirtualClock` for deterministic
        soaks; defaults to real time).
    crashes:
        :class:`CrashPlan` injections, armed at :meth:`start`.

    The fleet is an async context manager: ``async with`` drains on
    exit.  ``stats()["lost"]`` must be 0 after every drain — the fleet
    extends the single-service zero-lost invariant across shard crashes
    by construction (every dispatched request terminates as a normal
    response, a typed rejection, a re-routed solve, or ``lost_shard``).
    """

    def __init__(
        self,
        config: "FleetConfig | None" = None,
        *,
        clock: "Clock | None" = None,
        crashes: "tuple[CrashPlan, ...] | list[CrashPlan]" = (),
    ) -> None:
        self.config = config if config is not None else FleetConfig()
        self.clock = clock if clock is not None else RealClock()
        self.crashes = tuple(crashes)
        for plan in self.crashes:
            if plan.shard_index >= self.config.workers:
                raise ConfigurationError(
                    f"crash plan targets shard {plan.shard_index} but the "
                    f"fleet has {self.config.workers} workers"
                )
        self.sink = self._build_recorder()  # fleet-level metrics + spans
        self.ring = HashRing(
            [self._shard_name(i) for i in range(self.config.workers)],
            vnodes=self.config.vnodes,
        )
        self.board = LocalAbortBoard(
            max(1, self.config.workers * self.config.queue_capacity * 2)
        )
        self._shards: dict[str, _Shard] = {}
        #: crashed generations, kept so their spans/metrics still roll up
        self._retired: list[_Shard] = []
        self._rr = 0  # round-robin cursor (router="round_robin")
        self._state = "created"
        self._dispatched = 0
        self._responded = 0
        self._crash_tasks: list[asyncio.Task[None]] = []
        self._restart_tasks: list[asyncio.Task[None]] = []

    @staticmethod
    def _shard_name(index: int) -> str:
        return f"shard-{index}"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Lifecycle state: created / running / draining / closed."""
        return self._state

    def _build_recorder(self) -> Recorder:
        """A recorder on the fleet's duration clock (see ``deterministic_spans``)."""
        if self.config.deterministic_spans:
            return Recorder(tracer=Tracer(timer=self.clock.now))
        return Recorder()

    def _build_shard(self, name: str, generation: int = 0) -> _Shard:
        recorder = self._build_recorder()
        recorder.metrics.register_histogram(
            "service.latency.seconds", DEFAULT_TIME_EDGES
        )
        recorder.metrics.register_histogram(
            "service.queue_wait.seconds", DEFAULT_TIME_EDGES
        )
        engine = MatchingEngine(
            backend=self.config.engine_backend,
            cache=ResultCache(
                max_entries=self.config.cache_entries,
                disk_dir=self.config.shared_cache_dir,
            ),
            sink=recorder,
        )
        service = SolveService(
            engine,
            config=self.config.service_config(),
            clock=self.clock,
            sink=recorder,
        )
        return _Shard(
            name=name,
            service=service,
            engine=engine,
            recorder=recorder,
            generation=generation,
        )

    def start(self) -> None:
        """Build and start every shard; arm the crash plans (idempotent)."""
        if self._state in ("draining", "closed"):
            raise ServiceClosedError("fleet has been drained; create a new one")
        if self._state == "running":
            return
        self._state = "running"
        loop = asyncio.get_running_loop()
        for i in range(self.config.workers):
            name = self._shard_name(i)
            shard = self._build_shard(name)
            shard.service.start()
            self._shards[name] = shard
        for plan in self.crashes:
            self._crash_tasks.append(loop.create_task(self._crash_after(plan)))

    async def drain(self) -> None:
        """Fleet-wide graceful drain: finish everything, join every shard.

        Admission closes first; every dispatched request completes
        (response, typed rejection, re-route, or ``lost_shard``), then
        each live shard's own zero-lost drain runs, pending restarts are
        cancelled, and engines shut down.  Idempotent.
        """
        if self._state == "closed":
            return
        self._state = "draining"
        pending = [
            task for shard in self._shards.values() for task in shard.pending.values()
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for task in self._crash_tasks + self._restart_tasks:
            task.cancel()
        if self._crash_tasks or self._restart_tasks:
            await asyncio.gather(
                *self._crash_tasks, *self._restart_tasks, return_exceptions=True
            )
        self._crash_tasks = []
        self._restart_tasks = []
        for shard in self._shards.values():
            if not shard.dead:
                await shard.service.drain()
            shard.engine.close()
        self._state = "closed"

    async def __aenter__(self) -> "SimulatedFleet":
        self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.drain()

    def stats(self) -> "dict[str, int]":
        """Fleet-level acceptance accounting (zero-lost invariant).

        ``dispatched`` counts requests entering the router;
        ``responded`` counts terminal responses returned to callers.
        ``lost`` must be 0 at all times — a crashed shard converts its
        in-flight work to re-routes or ``lost_shard`` responses, never
        to silence.
        """
        in_flight = sum(len(s.pending) for s in self._shards.values())
        return {
            "dispatched": self._dispatched,
            "responded": self._responded,
            "in_flight": in_flight,
            "lost": self._dispatched - self._responded - in_flight,
        }

    # ------------------------------------------------------------------
    # routing + dispatch
    # ------------------------------------------------------------------

    def _dead_names(self) -> "set[str]":
        return {name for name, shard in self._shards.items() if shard.dead}

    def route_key(self, request: ServiceRequest) -> str:
        """The routing key: the request's content-addressed fingerprint."""
        return request.solve.fingerprint()

    def _pick_shard(self, request: ServiceRequest, exclude: "set[str]") -> str:
        dead = self._dead_names() | exclude
        if self.config.router == "ring":
            return self.ring.route(self.route_key(request), exclude=dead)
        live = [n for n in self.ring.shards if n not in dead]
        if not live:
            raise ConfigurationError("no live shard to route to")
        chosen = live[self._rr % len(live)]
        self._rr += 1
        return chosen

    async def handle(self, request: ServiceRequest) -> ServiceResponse:
        """Route ``request`` to its shard and return the terminal response.

        Rejections surface as typed outcome responses (the
        :meth:`~repro.service.pipeline.SolveService.handle` contract).
        A crash mid-flight follows the configured ``on_crash`` policy;
        re-routing excludes the crashed shard for that retry only.
        """
        if self._state == "created":
            self.start()
        if self._state != "running":
            self.sink.incr("fleet.rejected.closed")
            return ServiceResponse(
                request_id=request.request_id,
                outcome="rejected_closed",
                priority=request.priority,
                client=request.client,
                error=f"request {request.request_id!r}: fleet is {self._state}",
                error_type="ServiceClosedError",
            )
        self._dispatched += 1
        self.sink.incr("fleet.dispatched")
        tried: set[str] = set()
        while True:
            try:
                name = self._pick_shard(request, tried)
            except ConfigurationError:
                # every shard dead or already tried: terminal lost_shard
                self.sink.incr("fleet.lost_shard")
                response = _lost_shard_response(request, "|".join(sorted(tried)))
                self._responded += 1
                return response
            shard = self._shards[name]
            shard.routed += 1
            self.sink.incr("fleet.routed")
            self.sink.incr(f"fleet.routed.{name}")
            response = await self._dispatch_on(shard, request)
            if response is not None:
                self._responded += 1
                self.sink.incr(f"fleet.outcome.{response.outcome}")
                return response
            # shard died under this request
            tried.add(name)
            if self.config.on_crash == "lost_shard":
                self.sink.incr("fleet.lost_shard")
                self._responded += 1
                return _lost_shard_response(request, name)
            self.sink.incr("fleet.rerouted")

    async def _dispatch_on(
        self, shard: _Shard, request: ServiceRequest
    ) -> "ServiceResponse | None":
        """Run ``request`` on ``shard``; ``None`` means the shard died.

        The fleet owns the deadline: the inner request carries no
        ``deadline_s`` but samples an abort-board slot the fleet's
        timer flags at expiry — the exact protocol the process fleet
        uses, so the simulation exercises the same code path.
        """
        budget = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        slot = self.board.acquire()
        inner = ServiceRequest(
            request_id=request.request_id,
            solve=request.solve,
            priority=request.priority,
            client=request.client,
            deadline_s=None,
            abort_check=make_abort_check(self.board.flags(), slot, request.request_id),
        )
        loop = asyncio.get_running_loop()
        timer: "asyncio.Task[None] | None" = None
        if budget is not None:
            timer = loop.create_task(self._deadline_timer(slot, budget))
        task = loop.create_task(shard.service.handle(inner))
        shard.pending[request.request_id] = task
        try:
            return await task
        except asyncio.CancelledError:
            if shard.dead:
                return None  # crash path: the caller applies on_crash
            raise
        except ReproError:
            # handle() maps ReproErrors already; anything escaping here
            # is a dead-shard artifact (closed queue mid-dispatch)
            if shard.dead:
                return None
            raise
        finally:
            shard.pending.pop(request.request_id, None)
            if timer is not None:
                timer.cancel()
            self.board.release(slot)

    async def _deadline_timer(self, slot: int, budget: float) -> None:
        """The coordinator-side deadline: flag the slot after ``budget``."""
        await self.clock.sleep(budget)
        self.board.set(slot, ABORT_DEADLINE)

    # ------------------------------------------------------------------
    # crash + restart
    # ------------------------------------------------------------------

    async def _crash_after(self, plan: CrashPlan) -> None:
        await self.clock.sleep(plan.at_s)
        self.crash(self._shard_name(plan.shard_index))

    def crash(self, name: str) -> None:
        """Kill shard ``name`` now: cancel its work, schedule the restart."""
        shard = self._shards[name]
        if shard.dead:
            return
        shard.dead = True
        self.sink.incr("fleet.crashes")
        with self.sink.span(
            "fleet.crash", shard=name, in_flight=len(shard.pending)
        ):
            shard.service.kill()
            shard.engine.close()
            for task in list(shard.pending.values()):
                task.cancel()
        if self._state == "running":
            self._restart_tasks.append(
                asyncio.get_running_loop().create_task(self._restart(name))
            )

    async def _restart(self, name: str) -> None:
        """Modelled detection + restart: a cold replacement on the same ring slot."""
        await self.clock.sleep(self.config.restart_delay_s)
        old = self._shards[name]
        self._retired.append(old)
        replacement = self._build_shard(name, generation=old.generation + 1)
        replacement.routed = old.routed
        replacement.service.start()
        self._shards[name] = replacement
        self.sink.incr("fleet.restarts")

    # ------------------------------------------------------------------
    # observability rollup
    # ------------------------------------------------------------------

    def merged_metrics(self) -> MetricsRegistry:
        """One registry: fleet counters + every shard's ``service.*`` block.

        Built on :meth:`~repro.obs.metrics.MetricsRegistry.merge`, so
        histogram bucket edges are validated identical across shards —
        the structural guarantee that makes the merged latency
        quantiles meaningful.
        """
        merged = MetricsRegistry()
        merged.merge(self.sink.metrics)
        for shard in self._retired:
            merged.merge(shard.recorder.metrics)
        for shard in self._shards.values():
            merged.merge(shard.recorder.metrics)
        return merged

    def shard_report(self) -> "dict[str, dict[str, Any]]":
        """Per-shard routing, acceptance, and warm-cache locality stats."""
        report: dict[str, dict[str, Any]] = {}
        for name in sorted(self._shards):
            shard = self._shards[name]
            stats = shard.engine.cache.stats
            lookups = stats.hits + stats.misses
            service_stats = shard.service.stats()
            report[name] = {
                "routed": shard.routed,
                "generation": shard.generation,
                "responded": service_stats["responded"],
                "cache_hits": stats.hits,
                "cache_misses": stats.misses,
                "cache_hit_rate": (stats.hits / lookups) if lookups else 0.0,
                "disk_hits": stats.disk_hits,
                "disk_stores": stats.disk_stores,
                "dead": shard.dead,
            }
        return report

    def journal_records(self, meta: "dict[str, object] | None" = None) -> list:
        """The combined fleet journal (see :func:`combined_journal_records`)."""

        def spans_of(recorder: Recorder) -> "list[dict[str, object]]":
            return [span.to_dict() for span in recorder.tracer.spans]

        tagged = [
            (f"{shard.name}@{shard.generation}", spans_of(shard.recorder))
            for shard in self._retired
        ]
        tagged.extend(
            (shard.name, spans_of(shard.recorder))
            for _, shard in sorted(self._shards.items())
        )
        tagged.append(("fleet", spans_of(self.sink)))
        return combined_journal_records(
            tagged, metrics=self.merged_metrics(), meta=meta
        )


def combined_journal_records(
    shard_spans: "list[tuple[str, list[dict[str, Any]]]]",
    *,
    metrics: "MetricsRegistry | None" = None,
    meta: "dict[str, object] | None" = None,
) -> "list[dict[str, object]]":
    """Concatenate per-shard traces into one shard-tagged journal.

    ``shard_spans`` pairs a shard name with that shard's span payloads
    (:meth:`repro.obs.trace.Span.to_dict` dicts — which is also exactly
    what a worker process ships back over its pipe at drain).  Every
    span record gains a ``shard`` attribute and its indexes are rebased
    so the combined stream has globally unique, dense span ids — the
    same line grammar :func:`repro.obs.journal.validate_journal` checks,
    with exactly one merged metrics line.
    """
    records: list[dict[str, object]] = [
        {"event": "run", "schema": JOURNAL_SCHEMA, "meta": dict(meta or {})}
    ]
    offset = 0
    total = 0
    for shard_name, spans in shard_spans:
        for span in spans:
            record: dict[str, object] = dict(span)
            record["event"] = "span"
            record["index"] = int(record["index"]) + offset  # type: ignore[arg-type]
            if record["parent"] is not None:
                record["parent"] = int(record["parent"]) + offset  # type: ignore[arg-type]
            record["children"] = [int(c) + offset for c in record["children"]]  # type: ignore[union-attr]
            attributes = dict(record["attributes"])  # type: ignore[arg-type]
            attributes["shard"] = shard_name
            record["attributes"] = attributes
            records.append(record)
        offset += len(spans)
        total += len(spans)
    registry = metrics if metrics is not None else MetricsRegistry()
    records.append({"event": "metrics", "snapshot": registry.snapshot()})
    records.append({"event": "end", "spans": total, "lines": total + 3})
    return records


def write_fleet_journal(
    path: "str | Any", records: "list[dict[str, object]]"
) -> int:
    """Write combined journal ``records`` as JSONL; returns the line count."""
    from pathlib import Path

    text = "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"
    Path(path).write_text(text)
    return len(records)
