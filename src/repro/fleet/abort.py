"""Shared-memory abort flags: cross-process cooperative cancellation.

A deadline enforced *inside* the coordinator process cannot stop work
already running in a child: the child's engine is mid-solve in another
address space.  The fleet closes that gap with a board of plain integer
flags in shared memory — one slot per dispatch credit.  The protocol:

1. the coordinator assigns a free slot to each dispatched request and
   ships the slot index with it;
2. the coordinator owns the deadline timer (on *its* clock); at expiry
   it writes :data:`ABORT_DEADLINE` into the slot — a single aligned
   int store, safe without a lock;
3. the worker threads the slot into the service pipeline through
   :attr:`~repro.service.pipeline.ServiceRequest.abort_check`, so the
   engine's cooperative ``check`` hook samples the flag **between
   engine stages** and raises
   :class:`~repro.exceptions.DeadlineExceededError` mid-flight;
4. the response (a typed ``deadline`` outcome, produced by the child's
   own pipeline) travels back normally and the slot is cleared for
   reuse.

Sampling is cooperative and lock-free by design: a torn read is
impossible for a single int, and the worst case for a late write is one
extra engine stage of work — exactly the in-process ``Deadline``
contract, extended across a process boundary.  :class:`LocalAbortBoard`
backs the deterministic in-process fleet with the same API so the
simulated and real paths share all slot bookkeeping.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Sequence

from repro.exceptions import ConfigurationError, DeadlineExceededError

__all__ = [
    "ABORT_DEADLINE",
    "CLEAR",
    "LocalAbortBoard",
    "SharedAbortBoard",
    "make_abort_check",
]

#: slot states.  ``CLEAR`` means run; ``ABORT_DEADLINE`` asks the
#: worker's next cooperative check to raise DeadlineExceededError.
CLEAR = 0
ABORT_DEADLINE = 1


class LocalAbortBoard:
    """In-process abort board: a plain int list behind the board API.

    The deterministic fleet (and the unit tests) use this; the real
    coordinator uses :class:`SharedAbortBoard`.  Both expose identical
    slot-pool semantics so the dispatch path is transport-agnostic.
    """

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ConfigurationError(f"slots must be >= 1, got {slots}")
        self._flags: "Sequence[int] | list[int]" = [CLEAR] * slots
        self._free: list[int] = list(range(slots - 1, -1, -1))

    def __len__(self) -> int:
        return len(self._flags)

    @property
    def free_slots(self) -> int:
        """Slots currently available to :meth:`acquire`."""
        return len(self._free)

    def acquire(self) -> int:
        """Claim a free slot (cleared); raises when the pool is empty.

        The coordinator sizes the board to its dispatch concurrency
        bound, so exhaustion is a programming error, not backpressure.
        """
        if not self._free:
            raise ConfigurationError(
                f"abort board exhausted: all {len(self._flags)} slots in use"
            )
        slot = self._free.pop()
        self._flags[slot] = CLEAR  # type: ignore[index]
        return slot

    def release(self, slot: int) -> None:
        """Return ``slot`` to the pool, clearing its flag."""
        self._flags[slot] = CLEAR  # type: ignore[index]
        self._free.append(slot)

    def set(self, slot: int, state: int = ABORT_DEADLINE) -> None:
        """Write ``state`` into ``slot`` (the coordinator-side store)."""
        self._flags[slot] = state  # type: ignore[index]

    def get(self, slot: int) -> int:
        """Read ``slot`` (the worker-side sample)."""
        return int(self._flags[slot])

    def flags(self) -> "Sequence[int]":
        """The raw flag array, for building per-request samplers.

        On :class:`SharedAbortBoard` this is the shared-memory array to
        ship to worker processes at spawn; here it is the plain list the
        in-process fleet threads into :func:`make_abort_check`.
        """
        return self._flags


class SharedAbortBoard(LocalAbortBoard):
    """Abort board over a shared-memory int array.

    The flag array is a lock-free ``multiprocessing.Array`` visible to
    every worker; the free-slot pool stays coordinator-local (workers
    only ever *read* their assigned slot).  :meth:`flags` hands out the
    raw array for passing to child processes at spawn.
    """

    def __init__(self, slots: int) -> None:
        super().__init__(slots)
        # single-int stores/loads are atomic at the hardware level; the
        # protocol tolerates a late write by design, so no lock.
        self._flags = multiprocessing.Array("i", slots, lock=False)


def make_abort_check(
    flags: "Sequence[int]", slot: int, request_id: str
) -> "Callable[[str], None]":
    """Build the worker-side sampler for one request's slot.

    The returned callable matches the
    :attr:`~repro.service.pipeline.ServiceRequest.abort_check` contract:
    called with a stage name at every pipeline and engine stage
    boundary, raising :class:`~repro.exceptions.DeadlineExceededError`
    once the coordinator has flagged the slot.
    """

    def check(stage: str) -> None:
        if int(flags[slot]) == ABORT_DEADLINE:
            raise DeadlineExceededError(
                f"request {request_id!r}: coordinator deadline abort at "
                f"stage {stage!r} (shared-memory flag, slot {slot})",
                request_id=request_id,
                stage=stage,
            )

    return check
