"""Counting and enumeration: trees, pairings, k-ary matchings.

Backs three quantitative claims of the paper:

* Cayley's formula — there are k^(k-2) distinct binding trees on k
  genders (Section IV.B), enumerated here via Prüfer sequences;
* T(k) = (k-1)! priority-based binding trees (Section IV.D, Fig. 6);
* Example 2's counts — the balanced tripartite graph on 2+2+2 nodes has
  8 perfect binary pairings and 4 ternary matchings.

Enumerators are exact and exponential; they exist to *verify* formulas
on small k and n, not to scale.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence

from repro.exceptions import ConfigurationError, InvalidBindingTreeError
from repro.model.members import Member

__all__ = [
    "cayley_count",
    "prufer_to_tree",
    "tree_to_prufer",
    "enumerate_labeled_trees",
    "count_priority_trees",
    "enumerate_kary_matchings",
    "enumerate_perfect_binary_matchings",
    "count_perfect_binary_matchings",
]


def cayley_count(k: int) -> int:
    """Number of labeled trees on k nodes: k^(k-2) (k >= 1)."""
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    if k <= 2:
        return 1
    return k ** (k - 2)


def prufer_to_tree(seq: Sequence[int], k: int) -> list[tuple[int, int]]:
    """Decode a Prüfer sequence of length k-2 into a tree's edge list.

    Edges are returned as (small, large) pairs, sorted, so equal trees
    compare equal.
    """
    if k < 2:
        raise ConfigurationError(f"need k >= 2 nodes, got {k}")
    if len(seq) != k - 2:
        raise InvalidBindingTreeError(f"Prüfer sequence for k={k} must have length {k - 2}")
    if any(not 0 <= x < k for x in seq):
        raise InvalidBindingTreeError(f"Prüfer entries must be node labels 0..{k - 1}")
    degree = [1] * k
    for x in seq:
        degree[x] += 1
    edges: list[tuple[int, int]] = []
    # iterate smallest-leaf first, as in the canonical decoding
    import heapq

    leaves = [i for i in range(k) if degree[i] == 1]
    heapq.heapify(leaves)
    for x in seq:
        leaf = heapq.heappop(leaves)
        edges.append((min(leaf, x), max(leaf, x)))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((min(u, v), max(u, v)))
    return sorted(edges)


def tree_to_prufer(edges: Sequence[tuple[int, int]], k: int) -> list[int]:
    """Encode a tree (edge list on nodes 0..k-1) as its Prüfer sequence."""
    if len(edges) != k - 1:
        raise InvalidBindingTreeError(f"a tree on {k} nodes has {k - 1} edges, got {len(edges)}")
    adj: dict[int, set[int]] = {i: set() for i in range(k)}
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)
    import heapq

    leaves = [i for i in range(k) if len(adj[i]) == 1]
    heapq.heapify(leaves)
    seq: list[int] = []
    for _ in range(k - 2):
        leaf = heapq.heappop(leaves)
        (nbr,) = adj[leaf]
        seq.append(nbr)
        adj[nbr].discard(leaf)
        adj[leaf].clear()
        if len(adj[nbr]) == 1:
            heapq.heappush(leaves, nbr)
    return seq


def enumerate_labeled_trees(k: int) -> Iterator[list[tuple[int, int]]]:
    """Yield every labeled tree on k nodes (k^(k-2) of them) as sorted
    edge lists, via the Prüfer bijection."""
    if k == 1:
        yield []
        return
    if k == 2:
        yield [(0, 1)]
        return
    for seq in itertools.product(range(k), repeat=k - 2):
        yield prufer_to_tree(seq, k)


def count_priority_trees(k: int) -> int:
    """T(k) = (k-1)!: the number of priority-based binding trees.

    Recurrence from the paper: T(k) = (k-1)·T(k-1), T(2) = T(1) = 1 —
    each new node (added in decreasing priority order) attaches to any
    of the existing nodes.
    """
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    return math.factorial(k - 1)


def enumerate_kary_matchings(k: int, n: int) -> Iterator[list[tuple[Member, ...]]]:
    """Yield every k-ary matching of a balanced k-partite graph.

    A k-ary matching is n disjoint k-tuples, one member per gender per
    tuple.  Fixing gender 0's members to tuples 0..n-1 in order, the
    matchings correspond to (k-1)-tuples of permutations: (n!)^(k-1)
    in total — 4 for Example 2's k=3, n=2.
    """
    if k < 1 or n < 0:
        raise ConfigurationError(f"invalid (k, n) = ({k}, {n})")
    perms = list(itertools.permutations(range(n)))
    for combo in itertools.product(perms, repeat=k - 1):
        yield [
            tuple([Member(0, t)] + [Member(g + 1, combo[g][t]) for g in range(k - 1)])
            for t in range(n)
        ]


def enumerate_perfect_binary_matchings(
    k: int, n: int
) -> Iterator[list[tuple[Member, Member]]]:
    """Yield every perfect *binary* matching of the complete balanced
    k-partite graph (pairs must span two distinct genders).

    Example 2: k=3, n=2 gives exactly 8 pairings.  Yields nothing when
    k·n is odd (no perfect matching can exist).
    """
    members = [Member(g, i) for g in range(k) for i in range(n)]
    if (len(members)) % 2 == 1:
        return

    def rec(remaining: tuple[Member, ...]) -> Iterator[list[tuple[Member, Member]]]:
        if not remaining:
            yield []
            return
        head = remaining[0]
        rest = remaining[1:]
        for idx, other in enumerate(rest):
            if other.gender == head.gender:
                continue
            sub = rest[:idx] + rest[idx + 1 :]
            for tail in rec(sub):
                yield [(head, other)] + tail

    yield from rec(tuple(members))


def count_perfect_binary_matchings(k: int, n: int) -> int:
    """Number of perfect binary matchings of the complete balanced
    k-partite graph (exhaustive; keep k·n small)."""
    return sum(1 for _ in enumerate_perfect_binary_matchings(k, n))
