"""Happiness metrics for k-ary matchings.

Generalizes the bipartite costs: a member's cost is the sum of the
ranks it assigns its k-1 family partners; a gender's cost aggregates
its members.  Used by the tree-diversity and orientation-ablation
experiments (E07) to show *which* gender each binding tree favors —
the k-ary analogue of GS's proposer bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.model.members import Member

if TYPE_CHECKING:  # annotation-only: avoids the core <-> analysis cycle
    from repro.core.kary_matching import KAryMatching

__all__ = [
    "kary_member_cost",
    "kary_gender_costs",
    "kary_egalitarian_cost",
    "kary_regret",
    "KaryCosts",
    "kary_costs",
]


def kary_member_cost(matching: KAryMatching, member: Member) -> int:
    """Sum of ranks ``member`` assigns its k-1 family partners."""
    inst = matching.instance
    return sum(
        inst.rank(member, matching.partner(member, h))
        for h in range(inst.k)
        if h != member.gender
    )


def kary_gender_costs(matching: KAryMatching) -> list[int]:
    """Total member cost per gender (index = gender)."""
    inst = matching.instance
    return [
        sum(kary_member_cost(matching, Member(g, i)) for i in range(inst.n))
        for g in range(inst.k)
    ]


def kary_egalitarian_cost(matching: KAryMatching) -> int:
    """Sum of all members' costs (lower = happier overall)."""
    return int(sum(kary_gender_costs(matching)))


def kary_regret(matching: KAryMatching) -> int:
    """The worst single rank any member assigns any of its partners."""
    inst = matching.instance
    worst = 0
    for m in inst.members():
        for h in range(inst.k):
            if h == m.gender:
                continue
            worst = max(worst, inst.rank(m, matching.partner(m, h)))
    return worst


@dataclass(frozen=True)
class KaryCosts:
    """All k-ary metrics at once."""

    gender_costs: tuple[int, ...]
    egalitarian: int
    regret: int
    spread: int  # max gender cost - min gender cost (inter-gender fairness)


def kary_costs(matching: KAryMatching) -> KaryCosts:
    """Compute every k-ary metric for ``matching``."""
    per_gender = kary_gender_costs(matching)
    return KaryCosts(
        gender_costs=tuple(per_gender),
        egalitarian=int(sum(per_gender)),
        regret=kary_regret(matching),
        spread=int(max(per_gender) - min(per_gender)),
    )
