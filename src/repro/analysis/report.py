"""Plain-text rendering of experiment results: tables and bar series.

The benchmark harness and example scripts print their regenerated paper
artifacts through these helpers so EXPERIMENTS.md snippets, bench
output, and example output all share one format.  Text-only by design —
the repository has no plotting dependency, and every figure in the
paper is reproducible as numbers.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["format_table", "format_series", "format_comparison"]


def format_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width table with a title rule.

    >>> print(format_table("t", ["a", "bb"], [[1, 2]]))
    === t ===
    a  bb
    -----
    1  2
    """
    cells = [[str(x) for x in row] for row in rows]
    for row in cells:
        if len(row) != len(header):
            raise ConfigurationError(
                f"row has {len(row)} cells but header has {len(header)}"
            )
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(header)
    ]
    head = "  ".join(str(h).ljust(w) for h, w in zip(header, widths)).rstrip()
    lines = [f"=== {title} ===", head, "-" * len(head)]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_series(
    title: str,
    points: Mapping[object, float] | Sequence[tuple[object, float]],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart of a labeled numeric series.

    Bars scale to the maximum value; zero and negative values render as
    empty bars (magnitude charts only).

    >>> print(format_series("s", [("a", 2.0), ("b", 4.0)], width=4))
    === s ===
    a  ##    2
    b  ####  4
    """
    if isinstance(points, Mapping):
        items = list(points.items())
    else:
        items = list(points)
    if not items:
        return f"=== {title} ===\n(no data)"
    labels = [str(k) for k, _ in items]
    values = [float(v) for _, v in items]
    peak = max(max(values), 0.0)
    label_w = max(len(s) for s in labels)
    lines = [f"=== {title} ==="]
    for label, value in zip(labels, values):
        bar_len = int(round(width * value / peak)) if peak > 0 and value > 0 else 0
        shown = f"{value:g}{unit}"
        lines.append(f"{label.ljust(label_w)}  {('#' * bar_len).ljust(width)}  {shown}")
    return "\n".join(lines)


def format_comparison(
    title: str,
    baseline_name: str,
    baseline: float,
    others: Mapping[str, float] | Sequence[tuple[str, float]],
    *,
    higher_is_better: bool = False,
) -> str:
    """Relative comparison against a baseline (ratios annotated).

    >>> print(format_comparison("c", "serial", 2.0, [("parallel", 1.0)]))
    === c ===
    serial    2 (baseline)
    parallel  1 (0.50x)
    """
    if isinstance(others, Mapping):
        items = list(others.items())
    else:
        items = list(others)
    if baseline == 0:
        raise ConfigurationError("baseline must be non-zero")
    label_w = max(len(baseline_name), *(len(k) for k, _ in items)) if items else len(
        baseline_name
    )
    lines = [f"=== {title} ===", f"{baseline_name.ljust(label_w)}  {baseline:g} (baseline)"]
    for name, value in items:
        ratio = value / baseline
        lines.append(f"{name.ljust(label_w)}  {value:g} ({ratio:.2f}x)")
    return "\n".join(lines)
