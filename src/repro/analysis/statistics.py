"""Instance analytics: how competitive is a preference system?

Stable-matching behaviour is driven by preference *correlation*: when
everyone agrees (master lists) competition maximizes proposal counts
and nukes responder happiness; when tastes are idiosyncratic, almost
everyone gets a high choice.  These statistics quantify where an
instance sits on that axis, for experiment narration and workload
sanity checks:

* :func:`mutual_first_choices` — pairs who rank each other first (these
  marry in every stable matching);
* :func:`popularity_concentration` — per (rater-gender, rated-gender)
  block, how concentrated first-choices are on few members (normalized
  Herfindahl index: 0 = uniform, 1 = everyone's first choice is the
  same member);
* :func:`mean_agreement` — average Kendall-tau-style agreement between
  the lists of two raters of the same gender over another gender
  (0 = independent, 1 = identical master list, negative = contrarian).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.model.instance import KPartiteInstance
from repro.model.members import Member

__all__ = [
    "mutual_first_choices",
    "popularity_concentration",
    "mean_agreement",
    "InstanceStats",
    "instance_stats",
]


def mutual_first_choices(instance: KPartiteInstance) -> list[tuple[Member, Member]]:
    """All cross-gender pairs who are each other's first choice.

    Such a pair is matched in *every* stable binary matching of the two
    genders, and by proposer-optimality in every GS binding of the edge.
    """
    out = []
    for g in range(instance.k):
        for h in range(g + 1, instance.k):
            for i in range(instance.n):
                a = Member(g, i)
                b = instance.top(a, h)
                if instance.top(b, g) == a:
                    out.append((a, b))
    return out


def popularity_concentration(instance: KPartiteInstance) -> dict[tuple[int, int], float]:
    """Normalized Herfindahl index of first-choice shares per block.

    Key ``(g, h)``: how concentrated gender g's first choices over
    gender h are.  0 means perfectly spread (everyone tops a different
    member, only possible when shares are uniform), 1 means unanimous.
    """
    n = instance.n
    out: dict[tuple[int, int], float] = {}
    for g in range(instance.k):
        for h in range(instance.k):
            if g == h:
                continue
            counts = [0] * n
            for i in range(n):
                counts[instance.top(Member(g, i), h).index] += 1
            shares = [c / n for c in counts]
            hhi = sum(s * s for s in shares)
            # normalize from [1/n, 1] to [0, 1]
            out[(g, h)] = (hhi - 1 / n) / (1 - 1 / n) if n > 1 else 1.0
    return out


def _pair_agreement(list_a: list[int], list_b: list[int]) -> float:
    """Kendall-tau-style agreement of two rankings (values in [-1, 1])."""
    n = len(list_a)
    if n < 2:
        return 1.0
    pos_a = {x: r for r, x in enumerate(list_a)}
    pos_b = {x: r for r, x in enumerate(list_b)}
    concordant = discordant = 0
    for x, y in itertools.combinations(range(n), 2):
        same = (pos_a[x] - pos_a[y]) * (pos_b[x] - pos_b[y])
        if same > 0:
            concordant += 1
        else:
            discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total


def mean_agreement(instance: KPartiteInstance) -> dict[tuple[int, int], float]:
    """Mean pairwise rank agreement among gender g's raters of gender h.

    1.0 for master lists, ~0 for independent random lists.
    """
    out: dict[tuple[int, int], float] = {}
    for g in range(instance.k):
        for h in range(instance.k):
            if g == h:
                continue
            lists = [
                [m.index for m in instance.preference_list(Member(g, i), h)]
                for i in range(instance.n)
            ]
            if len(lists) < 2:
                out[(g, h)] = 1.0
                continue
            vals = [
                _pair_agreement(a, b) for a, b in itertools.combinations(lists, 2)
            ]
            out[(g, h)] = sum(vals) / len(vals)
    return out


@dataclass(frozen=True)
class InstanceStats:
    """Bundle of all instance analytics."""

    mutual_first_pairs: int
    max_popularity_concentration: float
    mean_popularity_concentration: float
    mean_list_agreement: float


def instance_stats(instance: KPartiteInstance) -> InstanceStats:
    """Compute every analytic at once."""
    conc = popularity_concentration(instance)
    agree = mean_agreement(instance)
    return InstanceStats(
        mutual_first_pairs=len(mutual_first_choices(instance)),
        max_popularity_concentration=max(conc.values()),
        mean_popularity_concentration=sum(conc.values()) / len(conc),
        mean_list_agreement=sum(agree.values()) / len(agree),
    )
