"""Parameter sweeps behind the quantitative experiments.

Each function returns a list of :class:`SweepRow` — plain records with
the parameters, the measured quantity, and the paper's bound — which
the benchmark harness prints as the tables/series of EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.bipartite.gale_shapley import gale_shapley
from repro.exceptions import ConfigurationError
from repro.core.binding_tree import BindingTree
from repro.core.iterative_binding import iterative_binding
from repro.model.generators import random_instance
from repro.parallel.pram import PRAMModel, simulate_schedule
from repro.parallel.schedule import greedy_tree_schedule
from repro.utils.rng import as_rng, spawn_rngs

__all__ = [
    "SweepRow",
    "gs_proposal_sweep",
    "binding_proposal_sweep",
    "parallel_rounds_sweep",
    "tree_diversity",
]


@dataclass(frozen=True)
class SweepRow:
    """One measured data point of a sweep."""

    params: dict[str, object]
    measured: float
    bound: float | None = None
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def ratio(self) -> float | None:
        """measured / bound — how tight the paper's bound is in practice."""
        if self.bound in (None, 0):
            return None
        return self.measured / float(self.bound)


def gs_proposal_sweep(
    sizes: Sequence[int],
    *,
    trials: int = 5,
    seed: int | None = 0,
    workload: str = "random",
) -> list[SweepRow]:
    """Measured GS proposals vs the n² bound (E15's series).

    ``workload``: ``"random"`` (uniform lists), ``"identical"`` (master
    list: n(n+1)/2 proposals exactly) or ``"cyclic"``.
    """
    from repro.model.generators import cyclic_smp, identical_preferences_smp, random_smp

    rows: list[SweepRow] = []
    rng = as_rng(seed)
    for n in sizes:
        counts = []
        for _ in range(trials):
            if workload == "random":
                inst = random_smp(n, rng)
            elif workload == "identical":
                inst = identical_preferences_smp(n)
            elif workload == "cyclic":
                inst = cyclic_smp(n)
            else:
                raise ConfigurationError(f"unknown workload {workload!r}")
            view = inst.bipartite_view(0, 1)
            counts.append(
                gale_shapley(view.proposer_prefs, view.responder_prefs).proposals
            )
        rows.append(
            SweepRow(
                params={"n": n, "workload": workload},
                measured=float(np.mean(counts)),
                bound=float(n * n),
                extra={"max": max(counts), "min": min(counts)},
            )
        )
    return rows


def binding_proposal_sweep(
    ks: Sequence[int],
    ns: Sequence[int],
    *,
    trials: int = 3,
    seed: int | None = 0,
    tree_shape: str = "random",
) -> list[SweepRow]:
    """Measured Algorithm 1 proposals vs Theorem 3's (k-1)·n² bound."""
    rows: list[SweepRow] = []
    rng = as_rng(seed)
    for k in ks:
        for n in ns:
            counts = []
            for trial_rng in spawn_rngs(rng, trials):
                inst = random_instance(k, n, trial_rng)
                if tree_shape == "random":
                    tree = BindingTree.random(k, trial_rng)
                elif tree_shape == "chain":
                    tree = BindingTree.chain(k)
                elif tree_shape == "star":
                    tree = BindingTree.star(k)
                else:
                    raise ConfigurationError(f"unknown tree shape {tree_shape!r}")
                counts.append(iterative_binding(inst, tree).total_proposals)
            rows.append(
                SweepRow(
                    params={"k": k, "n": n, "tree": tree_shape},
                    measured=float(np.mean(counts)),
                    bound=float((k - 1) * n * n),
                    extra={"max": max(counts)},
                )
            )
    return rows


def parallel_rounds_sweep(
    ks: Sequence[int],
    *,
    n: int = 16,
    seed: int | None = 0,
    model: PRAMModel | str = PRAMModel.EREW,
) -> list[SweepRow]:
    """Scheduled binding rounds per tree shape vs Δ (Corollary 1's claim).

    For each k, reports (shape, Δ, rounds, makespan) for the star,
    chain, and a random tree; ``measured`` is the round count and
    ``bound`` is Δ — Corollary 1 says they coincide.
    """
    rows: list[SweepRow] = []
    rng = as_rng(seed)
    for k in ks:
        shapes = {
            "chain": BindingTree.chain(k),
            "star": BindingTree.star(k),
            "random": BindingTree.random(k, rng),
        }
        for shape, tree in shapes.items():
            schedule = greedy_tree_schedule(tree)
            report = simulate_schedule(schedule, model=model, n=n)
            rows.append(
                SweepRow(
                    params={"k": k, "shape": shape, "n": n},
                    measured=float(report.n_rounds),
                    bound=float(tree.max_degree),
                    extra={
                        "makespan": report.makespan,
                        "makespan_bound": tree.max_degree * n * n,
                        "speedup": report.speedup,
                    },
                )
            )
    return rows


def tree_diversity(
    k: int,
    n: int,
    *,
    seed: int | None = 0,
    max_trees: int | None = None,
) -> dict[str, object]:
    """How many distinct stable matchings do different binding trees
    produce on one random instance (Section IV.B's observation)?

    Enumerates all k^(k-2) trees (or the first ``max_trees``), runs
    Algorithm 1 on each, and fingerprints the resulting matchings.
    """
    inst = random_instance(k, n, seed)
    seen: dict[tuple, list[tuple[tuple[int, int], ...]]] = {}
    count = 0
    for tree in BindingTree.all_trees(k):
        if max_trees is not None and count >= max_trees:
            break
        count += 1
        result = iterative_binding(inst, tree)
        key = tuple(tuple(m) for tup in result.matching.tuples() for m in tup)
        seen.setdefault(key, []).append(tree.edges)
    return {
        "k": k,
        "n": n,
        "trees_tried": count,
        "distinct_matchings": len(seen),
        "matchings": seen,
    }
