"""Analysis utilities: metrics, counting, complexity sweeps.

Glue between the algorithmic layers and the experiment harness in
``benchmarks/``: happiness metrics for k-ary matchings, tree-counting
formulas with exhaustive verification, and the parameter sweeps that
regenerate the paper's quantitative claims.
"""

from repro.analysis.counting import (
    cayley_count,
    count_priority_trees,
    enumerate_labeled_trees,
    enumerate_kary_matchings,
    enumerate_perfect_binary_matchings,
    count_perfect_binary_matchings,
    prufer_to_tree,
    tree_to_prufer,
)
from repro.analysis.metrics import (
    kary_member_cost,
    kary_gender_costs,
    kary_egalitarian_cost,
    kary_regret,
    KaryCosts,
    kary_costs,
)
from repro.analysis.report import format_table, format_series, format_comparison
from repro.analysis.statistics import (
    mutual_first_choices,
    popularity_concentration,
    mean_agreement,
    InstanceStats,
    instance_stats,
)
from repro.analysis.complexity import (
    SweepRow,
    binding_proposal_sweep,
    gs_proposal_sweep,
    parallel_rounds_sweep,
    tree_diversity,
)

__all__ = [
    "cayley_count",
    "count_priority_trees",
    "enumerate_labeled_trees",
    "enumerate_kary_matchings",
    "enumerate_perfect_binary_matchings",
    "count_perfect_binary_matchings",
    "prufer_to_tree",
    "tree_to_prufer",
    "kary_member_cost",
    "kary_gender_costs",
    "kary_egalitarian_cost",
    "kary_regret",
    "KaryCosts",
    "kary_costs",
    "format_table",
    "format_series",
    "format_comparison",
    "mutual_first_choices",
    "popularity_concentration",
    "mean_agreement",
    "InstanceStats",
    "instance_stats",
    "SweepRow",
    "binding_proposal_sweep",
    "gs_proposal_sweep",
    "parallel_rounds_sweep",
    "tree_diversity",
]
