# Developer entry points.  `make all` is the full verification story.

PY ?= python

.PHONY: install lint lint-strict lint-sarif typecheck test bench bench-smoke perf perf-smoke perf-history trace-smoke service-smoke fleet-smoke replay-smoke examples fast slow all clean

install:
	$(PY) -m pip install -e . || $(PY) setup.py develop

# the CI lint gate: two-phase analysis (module rules + call-graph rules)
# with the per-file summary cache and the committed baseline.  The
# baseline is empty today — keep it that way; it exists so a future
# emergency has an escape hatch that is visible in review.
lint:
	PYTHONPATH=src $(PY) -m repro lint src/repro \
		--cache-dir .statan-cache --baseline lint-baseline.json

# no baseline: shows accepted debt too.  Non-blocking in CI.
lint-strict:
	PYTHONPATH=src $(PY) -m repro lint src/repro --cache-dir .statan-cache

# SARIF 2.1.0 export for GitHub code scanning / PR annotations
lint-sarif:
	PYTHONPATH=src $(PY) -m repro lint src/repro \
		--cache-dir .statan-cache --format=sarif > statan.sarif || true

typecheck:
	@$(PY) -c "import mypy" 2>/dev/null \
		&& $(PY) -m mypy src/repro \
		|| echo "mypy not installed; skipping typecheck"

test:
	$(PY) -m pytest tests/

fast:
	$(PY) -m pytest tests/ -m "not slow"

slow:
	$(PY) -m pytest tests/ -m slow

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -s

# fast CI gate on the serving-layer claims (dedup, cache, retry telemetry)
# plus the stacked-GS floors: the arena engine must hold its min_speedup
# over the per-instance loop (2.0x at 256xn=32, 1.5x on the n=512 ensemble)
bench-smoke:
	PYTHONPATH=src $(PY) -m pytest benchmarks/test_bench_e24_engine.py -x -q
	PYTHONPATH=src $(PY) -m repro perf check --baseline BENCH_perf.json \
		--workloads gs.batch.c256n32,gs.batch.mertens.n512 \
		--trials 3 --tolerance 0.6 -o BENCH_perf_measured.json

# re-measure all workloads and refresh the committed baseline
perf:
	PYTHONPATH=src $(PY) -m repro perf run -o BENCH_perf.json

# regression gate against the committed baseline.  The loose tolerance
# absorbs cross-machine variance; op counters and min_speedup floors are
# always enforced exactly.
perf-smoke:
	PYTHONPATH=src $(PY) -m repro perf check --baseline BENCH_perf.json \
		--trials 3 --tolerance 0.6 -o BENCH_perf_measured.json

# file the freshly measured report under benchmarks/history/ (keyed by
# the current commit) and refresh the trend table in EXPERIMENTS.md
perf-history:
	PYTHONPATH=src $(PY) -m repro perf history --record BENCH_perf_measured.json \
		--experiments EXPERIMENTS.md

# end-to-end observability gate: instrumented k=3 solve, then validate
# the journal line grammar, the Chrome-trace schema, and the Theorem 3
# span invariants (k-1 binding spans, proposal totals within bound)
trace-smoke:
	rm -rf .trace-smoke
	PYTHONPATH=src $(PY) -m repro trace --example k3 --out-dir .trace-smoke --smoke
	rm -rf .trace-smoke

# deterministic 1k-request soak on the virtual clock: --check reruns the
# same seed and fails on any nondeterminism, lost request, missing
# deadline rejection, or absent latency quantile; the JSON report is the
# CI artifact
service-smoke:
	PYTHONPATH=src $(PY) -m repro load --requests 1000 --seed 20260806 \
		--check --out service_load_report.json

# fleet gate: the same determinism contract at horizontal scale — a
# seeded 2k-request virtual-clock soak across 4 simulated shards with
# one worker crash injected mid-run.  --check reruns the seed and fails
# on any nondeterminism, any lost request (zero-lost must survive the
# crash), a dead abort-flag path, or a missing shard in the report
fleet-smoke:
	PYTHONPATH=src $(PY) -m repro load --fleet 4 --requests 2000 \
		--seed 20260806 --pool 16 --popularity zipfian \
		--crash-shard 2 --crash-at 0.5 \
		--check --out fleet_load_report.json

# record & replay gate: capture the wire traffic of a 1k-request seeded
# virtual soak, then re-drive the capture through a fresh serving stack.
# `replay --check` runs the replay twice and fails unless both runs
# agree byte-for-byte on the LoadReport, the metrics snapshot, and the
# journal; the final diff pins the stronger contract — the replayed
# report must be byte-identical to the *original* soak's report
replay-smoke:
	PYTHONPATH=src $(PY) -m repro load --requests 1000 --seed 20260806 \
		--capture replay_capture.jsonl --out replay_original_report.json
	PYTHONPATH=src $(PY) -m repro replay replay_capture.jsonl --check \
		--out replay_replayed_report.json
	@$(PY) -c "import json, sys; \
a = json.load(open('replay_original_report.json')); \
b = json.load(open('replay_replayed_report.json')); \
sys.exit('replay-smoke FAILED: replayed report differs from original' \
    if json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True) else 0); \
" && echo "replay-smoke OK: replayed report byte-identical to original"

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PY) $$f > /dev/null || exit 1; done; \
	echo "all examples ran cleanly"

all: lint typecheck test bench examples

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache build dist *.egg-info src/*.egg-info
	rm -rf .statan-cache statan.sarif
