#!/usr/bin/env python
"""Quickstart: build an instance, bind it, verify stability.

Covers the library's core loop in under a minute:

1. generate a balanced k-partite preference system;
2. run the Iterative Binding GS algorithm (Algorithm 1) along a chain
   binding tree;
3. verify Theorem 2 (no blocking family) and Theorem 3 (proposal bound);
4. inspect happiness metrics and serialize everything to JSON.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.analysis.metrics import kary_costs
from repro.model.serialize import instance_to_json, matching_to_dict


def main() -> None:
    # 1. three genders, eight members each, reproducible preferences
    inst = repro.random_instance(k=3, n=8, seed=42)
    print(f"instance: {inst!r}")
    print("first member's lists:")
    member = repro.Member(0, 0)
    for gender in (1, 2):
        names = " ".join(inst.name(x) for x in inst.preference_list(member, gender))
        print(f"  {inst.name(member)} over gender {inst.gender_names[gender]}: {names}")

    # 2. Algorithm 1 along the chain tree a-b-c
    tree = repro.BindingTree.chain(inst.k)
    result = repro.iterative_binding(inst, tree)
    print(f"\nbinding tree edges: {list(tree.edges)}")
    print("families:")
    print(result.matching.format())

    # 3. the paper's guarantees, checked
    assert repro.is_stable_kary(inst, result.matching), "Theorem 2 violated?!"
    print(
        f"\nstable: yes (no blocking family)  |  proposals: "
        f"{result.total_proposals} <= (k-1)n^2 = {result.proposal_bound}"
    )

    # 4. metrics and serialization
    costs = kary_costs(result.matching)
    print(f"per-gender happiness cost: {costs.gender_costs} (lower = happier)")
    print(f"egalitarian cost: {costs.egalitarian}, worst single rank: {costs.regret}")

    blob = instance_to_json(inst)
    print(f"\ninstance serializes to {len(blob)} bytes of JSON")
    print(f"matching serializes to {matching_to_dict(result.matching)}")


if __name__ == "__main__":
    main()
