#!/usr/bin/env python
"""Three-sided networking services: clients, servers, channels.

The paper cites "cyclic stable matching for three-sided networking
services" (Cui & Jia) as the systems application of multi-gender
matching: a session needs a *client*, a *server* and a *channel*, and
each party ranks the others (latency, load, bandwidth...).  Existing
cyclic/combination formulations are NP-complete; the paper's k-ary
model with per-gender preference lists makes the problem tractable.

This script synthesizes a service scenario:

* clients rank servers by latency and channels by bandwidth;
* servers rank clients by revenue and channels by cost;
* channels rank both by utilization fit;

then forms stable (client, server, channel) sessions via iterative
binding, compares tree choices, and verifies no coalition of parties
would defect (no blocking family).

Run:  python examples/three_sided_services.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.metrics import kary_costs
from repro.model.instance import KPartiteInstance

CLIENT, SERVER, CHANNEL = 0, 1, 2
GENDER_NAMES = ("client", "server", "channel")


def build_service_instance(n: int, seed: int) -> KPartiteInstance:
    """Derive preference lists from synthetic latency/cost matrices."""
    rng = np.random.default_rng(seed)
    latency = rng.uniform(1, 50, size=(n, n))  # client x server (ms)
    bandwidth = rng.uniform(10, 1000, size=(n, n))  # client x channel (Mbps)
    revenue = rng.uniform(1, 100, size=(n, n))  # server x client ($)
    chan_cost = rng.uniform(1, 10, size=(n, n))  # server x channel
    util_fit_c = rng.uniform(0, 1, size=(n, n))  # channel x client
    util_fit_s = rng.uniform(0, 1, size=(n, n))  # channel x server

    pref = np.full((3, n, 3, n), -1, dtype=np.int32)
    for i in range(n):
        pref[CLIENT, i, SERVER] = np.argsort(latency[i])  # lower latency first
        pref[CLIENT, i, CHANNEL] = np.argsort(-bandwidth[i])  # higher bw first
        pref[SERVER, i, CLIENT] = np.argsort(-revenue[i])
        pref[SERVER, i, CHANNEL] = np.argsort(chan_cost[i])
        pref[CHANNEL, i, CLIENT] = np.argsort(-util_fit_c[i])
        pref[CHANNEL, i, SERVER] = np.argsort(-util_fit_s[i])
    return KPartiteInstance.from_arrays(
        pref, validate=False, gender_names=GENDER_NAMES
    )


def main() -> None:
    n = 12
    inst = build_service_instance(n, seed=2026)
    print(f"service pool: {n} clients, {n} servers, {n} channels\n")

    # compare the three binding-tree shapes the operator could pick
    trees = {
        "client-server, server-channel": repro.BindingTree(3, [(CLIENT, SERVER), (SERVER, CHANNEL)]),
        "client-server, client-channel": repro.BindingTree(3, [(CLIENT, SERVER), (CLIENT, CHANNEL)]),
        "server-channel, channel-client": repro.BindingTree(3, [(SERVER, CHANNEL), (CHANNEL, CLIENT)]),
    }
    print(f"{'binding plan':38s} {'client':>7s} {'server':>7s} {'channel':>8s} {'total':>6s}")
    best_name, best_result, best_cost = None, None, None
    for name, tree in trees.items():
        result = repro.iterative_binding(inst, tree)
        assert repro.is_stable_kary(inst, result.matching), "no coalition defects"
        costs = kary_costs(result.matching)
        print(
            f"{name:38s} {costs.gender_costs[0]:7d} {costs.gender_costs[1]:7d} "
            f"{costs.gender_costs[2]:8d} {costs.egalitarian:6d}"
        )
        if best_cost is None or costs.egalitarian < best_cost:
            best_name, best_result, best_cost = name, result, costs.egalitarian

    print(f"\nbest plan by total cost: {best_name}")
    print("\nfirst five sessions of the best plan:")
    for tup in best_result.matching.tuples()[:5]:
        print("  session: " + ", ".join(inst.name(m) for m in tup))

    # parallel deployment: with k=3 the chain's two bindings share the
    # middle gender, so EREW needs 2 rounds; replicating the shared
    # gender's data (CREW emulation) collapses them into one round.
    from repro.parallel.pram import one_round_schedule, simulate_schedule
    from repro.parallel.schedule import even_odd_chain_schedule

    chain = repro.BindingTree.chain(3)
    erew = simulate_schedule(even_odd_chain_schedule(chain), n=n)
    crew = simulate_schedule(one_round_schedule(chain), model="CREW", n=n)
    print(
        f"\nparallel plan: EREW {erew.n_rounds} rounds "
        f"(makespan {int(erew.makespan)} units) vs CREW 1 round "
        f"(makespan {int(crew.makespan)} units)"
    )


if __name__ == "__main__":
    main()
