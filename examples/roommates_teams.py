#!/usr/bin/env python
"""Pair programming with the stable roommates engine.

The Section III.B machinery is useful far beyond the k-partite
reduction: any one-population pairing problem with preferences is a
stable roommates instance.  This script pairs up an engineering team
for pair programming:

* engineers rate each other from compatibility scores (skill overlap
  minus timezone distance);
* Irving's algorithm either returns a pairing no two engineers would
  defect from, or proves that none exists (a real phenomenon — the odd
  "everyone wants the same partner" cycles);
* when no stable pairing exists we report the certificate (whose
  options collapsed) and show how removing one participant resolves it.

Run:  python examples/roommates_teams.py
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NoStableMatchingError
from repro.roommates.instance import RoommatesInstance
from repro.roommates.irving import solve_roommates
from repro.roommates.verify import blocking_pairs_roommates

NAMES = ["ada", "bea", "cal", "dev", "eli", "fay", "gus", "hal"]


def build_team(n: int, seed: int) -> RoommatesInstance:
    rng = np.random.default_rng(seed)
    skills = rng.normal(size=(n, 4))  # 4 skill dimensions
    tz = rng.integers(-6, 7, size=n)  # timezone offsets
    prefs = []
    for p in range(n):
        compat = {}
        for q in range(n):
            if q == p:
                continue
            overlap = float(skills[p] @ skills[q])
            distance = abs(int(tz[p]) - int(tz[q]))
            compat[q] = overlap - 0.4 * distance
        order = sorted(compat, key=lambda q: -compat[q])
        prefs.append(order)
    return RoommatesInstance(prefs, labels=NAMES[:n])


def main() -> None:
    n = 8
    inst = build_team(n, seed=4)
    print("compatibility rankings:")
    print(inst.format())

    result = solve_roommates(inst)
    print("\nstable pairing found:")
    for p, q in result.pairs():
        print(f"  {inst.labels[p]} <-> {inst.labels[q]}")
    assert blocking_pairs_roommates(inst, result.matching) == []
    print(f"(proposals: {result.proposals}, rotations eliminated: "
          f"{len(result.rotations)})")

    # the classic unsolvable shape: three engineers in a preference
    # cycle, one universally last
    print("\n--- the unsolvable quartet ---")
    cyclic = RoommatesInstance(
        [[1, 2, 3], [2, 0, 3], [0, 1, 3], [0, 1, 2]],
        labels=["ada", "bea", "cal", "dev"],
    )
    try:
        solve_roommates(cyclic)
    except NoStableMatchingError as exc:
        print(f"no stable pairing: {exc}")
    print(
        "whoever pairs with dev is someone's cyclic favourite, and that\n"
        "admirer always prefers them over its own partner — every pairing\n"
        "has a defecting pair.  The fix is structural, not algorithmic:\n"
        "change the pool (add/remove someone) or the preferences."
    )


if __name__ == "__main__":
    main()
