#!/usr/bin/env python
"""Parallel iterative binding: schedules, PRAM model, real processes.

Reproduces Section IV.C interactively:

* Corollary 1 — any binding tree schedules into Δ conflict-free rounds
  (star is worst, chain best);
* Corollary 2 / Figure 4 — the even-odd chain schedule finishes in 2
  rounds;
* CREW emulation — log₂Δ replication rounds buy a single binding round;
* real wall clock — a process pool vs serial vs (GIL-bound) threads.

Run:  python examples/parallel_binding.py          # quick model-level demo
      python examples/parallel_binding.py --real   # adds wall-clock runs
"""

from __future__ import annotations

import sys

import repro
from repro.model.generators import random_instance
from repro.parallel.executor import run_bindings_parallel
from repro.parallel.pram import one_round_schedule, simulate_schedule
from repro.parallel.replication import replication_rounds, replication_schedule
from repro.parallel.schedule import even_odd_chain_schedule, greedy_tree_schedule


def model_level_demo(k: int = 8, n: int = 32) -> None:
    print("=" * 64)
    print(f"PRAM cost model, k={k} genders, n={n} members (cost n^2/binding)")
    print("=" * 64)
    shapes = {
        "star": repro.BindingTree.star(k),
        "random": repro.BindingTree.random(k, seed=1),
        "chain": repro.BindingTree.chain(k),
    }
    print(f"{'tree':8s} {'Δ':>3s} {'rounds':>7s} {'makespan':>9s} {'speedup':>8s}")
    for name, tree in shapes.items():
        report = simulate_schedule(greedy_tree_schedule(tree), n=n)
        print(
            f"{name:8s} {tree.max_degree:3d} {report.n_rounds:7d} "
            f"{int(report.makespan):9d} {report.speedup:8.2f}"
        )

    chain = shapes["chain"]
    eo = even_odd_chain_schedule(chain)
    print(f"\neven-odd chain schedule (Figure 4): {eo.n_rounds} rounds")
    for i, edges in enumerate(eo.rounds, 1):
        print(f"  round {i}: {list(edges)}")

    star = shapes["star"]
    delta = star.max_degree
    plan = replication_schedule(delta)
    replicated = simulate_schedule(
        one_round_schedule(star), model="EREW", copies=delta, n=n
    )
    print(
        f"\nCREW emulation for the star: {replication_rounds(delta)} replication "
        f"rounds (Δ={delta}), then 1 binding round of {int(replicated.makespan)} units"
    )
    print(f"  copy plan: {[list(r) for r in plan.rounds]}")


def wall_clock_demo(k: int = 5, n: int = 700) -> None:
    print()
    print("=" * 64)
    print(f"real execution, k={k}, n={n} (master-list workload, textbook engine)")
    print("=" * 64)
    # master-list preferences force ~n²/2 proposals per binding, so the
    # compute dominates process startup and pickling — random instances
    # only cost ~n·ln n proposals and would hide the parallelism.
    from repro.model.generators import master_list_instance

    inst = master_list_instance(k, n, seed=3, noise=0.0)
    tree = repro.BindingTree.chain(k)
    schedule = even_odd_chain_schedule(tree)

    results = {}
    for backend in ("serial", "thread", "process"):
        report = run_bindings_parallel(
            inst, tree, schedule=schedule, backend=backend, max_workers=k - 1
        )
        results[backend] = report
        print(f"{backend:8s}: {report.total_seconds:7.3f}s "
              f"(rounds: {[f'{s:.3f}' for s in report.round_seconds]})")

    base = results["serial"]
    for backend in ("thread", "process"):
        assert results[backend].matching == base.matching
        speedup = base.total_seconds / max(results[backend].total_seconds, 1e-9)
        note = "(GIL caps this near 1x)" if backend == "thread" else ""
        print(f"{backend} speedup over serial: {speedup:.2f}x {note}")

    import os

    cpus = len(os.sched_getaffinity(0))
    if cpus < 2:
        print(
            f"\nNOTE: this host exposes {cpus} CPU — physical parallelism is "
            "impossible,\nso expect ~1x (threads) and <1x (process overhead). "
            "On a multi-core host\nthe process pool approaches the Corollary-2 "
            "2-round speedup."
        )


if __name__ == "__main__":
    model_level_demo()
    if "--real" in sys.argv:
        wall_clock_demo()
    else:
        print("\n(pass --real for wall-clock process/thread measurements)")
