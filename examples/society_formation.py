#!/usr/bin/env python
"""Society with k genders: binary marriages break, k-parent families hold.

The paper's Section III application: "in a society with multiple
genders, stable marriage is not guaranteed" (Theorem 1) — but a "family
with k-parent, one from each of the k different genders" always admits
a stable formation (Theorem 2).

This script plays both halves on synthetic societies:

* an adversarial 4-gender society where *no* stable pairwise marriage
  assignment exists (and the Irving-based detector proves it);
* the same society re-organized into stable 4-parent families by the
  iterative binding algorithm;
* a sweep over random societies measuring how often pairwise marriage
  is possible at all, versus the always-100% k-ary family formation.

Run:  python examples/society_formation.py
"""

from __future__ import annotations

import repro
from repro.exceptions import NoStableMatchingError
from repro.kpartite.existence import solve_binary
from repro.model.generators import random_global_instance, society_instance, theorem1_instance


def adversarial_society() -> None:
    print("=" * 64)
    print("Part 1: the Theorem 1 society — no stable pairwise marriage")
    print("=" * 64)
    inst = theorem1_instance(k=4, n=2, seed=7)
    print(f"society: {inst.k} genders x {inst.n} members")
    try:
        solve_binary(inst, linearization="global")
        raise AssertionError("Theorem 1 says this cannot happen")
    except NoStableMatchingError as exc:
        print(f"pairwise marriage: IMPOSSIBLE — {exc}")

    print("\nk-parent families instead (Algorithm 1):")
    result = repro.iterative_binding(inst, repro.BindingTree.chain(inst.k))
    print(result.matching.format())
    assert repro.is_stable_kary(inst, result.matching)
    print("stable: yes — every gender contributes one parent per family")


def random_society_sweep(trials: int = 40) -> None:
    print()
    print("=" * 64)
    print("Part 2: random societies — how often does pairwise marriage work?")
    print("=" * 64)
    for k in (3, 4):
        solvable = 0
        for seed in range(trials):
            inst = random_global_instance(k, 2, seed=seed)
            try:
                solve_binary(inst)
                solvable += 1
            except NoStableMatchingError:
                pass
            # k-ary family formation, by contrast, never fails:
            res = repro.iterative_binding(inst, repro.BindingTree.chain(k))
            assert repro.is_stable_kary(inst, res.matching)
        print(
            f"k={k}: stable pairwise marriage in {solvable}/{trials} societies; "
            f"stable k-parent families in {trials}/{trials}"
        )


def structured_society() -> None:
    print()
    print("=" * 64)
    print("Part 3: a popularity-driven society (correlated preferences)")
    print("=" * 64)
    inst = society_instance(k=3, n=16, seed=3, popularity_weight=2.0, taste_weight=1.0)
    from repro.analysis.statistics import instance_stats

    stats = instance_stats(inst)
    print(
        f"preference structure: list agreement {stats.mean_list_agreement:.2f}, "
        f"popularity concentration {stats.mean_popularity_concentration:.2f}, "
        f"{stats.mutual_first_pairs} mutual first-choice pairs"
    )
    result = repro.priority_binding(inst)  # Algorithm 2's bitonic chain
    from repro.analysis.metrics import kary_costs

    costs = kary_costs(result.matching)
    print(f"binding tree (bitonic): {list(result.tree.edges)}")
    print(f"per-gender cost: {costs.gender_costs}, spread: {costs.spread}")
    assert repro.is_weakened_stable_kary(inst, result.matching)
    print("weakened-stable (Theorem 5, mutual semantics): yes")


if __name__ == "__main__":
    adversarial_society()
    random_society_sweep()
    structured_society()
