#!/usr/bin/env python
"""College admissions (Hospitals/Residents): capacitated stable matching.

The paper's related-work section recalls that Gale & Shapley's original
setting was college admission — a hospital/college can take multiple
residents/students — and that adding *couples* constraints makes the
problem NP-complete.  This script exercises both facts:

* a synthetic residency market solved with resident-proposing deferred
  acceptance (resident-optimal, provably stable);
* the rural-hospitals phenomenon: unpopular hospitals stay under-filled
  in every stable matching;
* the couples tension: how often the singles-optimal assignment splits
  couples, quantified (not "solved" — it can't be, in general).

Run:  python examples/college_admissions.py
"""

from __future__ import annotations

import numpy as np

from repro.bipartite.hospitals import (
    HRInstance,
    couples_violations,
    hospitals_residents,
    is_stable_hr,
)


def build_market(n_res: int, n_hosp: int, seed: int) -> HRInstance:
    """Residents prefer prestigious hospitals; hospitals prefer strong
    candidates — with personal noise on both sides."""
    rng = np.random.default_rng(seed)
    prestige = rng.normal(size=n_hosp)
    strength = rng.normal(size=n_res)
    res_prefs = [
        np.argsort(-(prestige + rng.normal(scale=0.7, size=n_hosp))).tolist()
        for _ in range(n_res)
    ]
    hosp_prefs = [
        np.argsort(-(strength + rng.normal(scale=0.7, size=n_res))).tolist()
        for _ in range(n_hosp)
    ]
    caps = [1] * n_hosp
    for _ in range(n_res - n_hosp):
        caps[int(rng.integers(n_hosp))] += 1
    return HRInstance(res_prefs, hosp_prefs, caps)


def main() -> None:
    n_res, n_hosp = 24, 6
    inst = build_market(n_res, n_hosp, seed=11)
    result = hospitals_residents(inst)
    assert is_stable_hr(inst, result.assignment)

    print(f"market: {n_res} residents, {n_hosp} hospitals, "
          f"capacities {list(inst.capacities)}")
    print(f"applications made: {result.proposals}\n")
    print(f"{'hospital':>8s} {'cap':>4s} {'filled':>7s}  admitted residents")
    for h in range(n_hosp):
        admitted = ", ".join(f"r{r}" for r in result.admitted[h])
        print(f"{'h' + str(h):>8s} {inst.capacities[h]:4d} "
              f"{len(result.admitted[h]):7d}  {admitted}")
    if result.unmatched:
        print(f"unmatched residents: {[f'r{r}' for r in result.unmatched]}")

    # resident happiness profile
    ranks = [
        inst.resident_rank(r, h) for r, h in enumerate(result.assignment) if h != -1
    ]
    print(
        f"\nresident happiness: {sum(1 for x in ranks if x == 0)} first choices, "
        f"mean rank {np.mean(ranks):.2f}, worst rank {max(ranks)}"
    )

    # the couples tension (NP-complete in general; we only measure)
    rng = np.random.default_rng(7)
    couples = [
        tuple(sorted(rng.choice(n_res, size=2, replace=False))) for _ in range(6)
    ]
    broken = couples_violations(inst, result.assignment, couples)
    print(
        f"\ncouples wanting co-assignment: {len(couples)}; "
        f"split by the singles-optimal matching: {len(broken)} "
        f"({[f'(r{a}, r{b})' for a, b in broken]})"
    )
    print(
        "finding a stable matching that honours couples is NP-complete "
        "(Ronn) — the library verifies, it does not promise to solve."
    )


if __name__ == "__main__":
    main()
