#!/usr/bin/env python
"""Procedurally fair stable marriages via the roommates machinery.

Gale-Shapley is provably biased toward the proposing side.  Section
III.B of the paper fixes this by letting *both* sides propose (the
stable roommates formulation) and alternating which side's "loop" gets
broken in phase 2.

This script quantifies the bias and the fix on random marriage markets:
for each policy we report the man cost, woman cost, their gap
(sex-equality cost) and the egalitarian total.

Run:  python examples/fair_smp.py
"""

from __future__ import annotations

import numpy as np

from repro.bipartite.fairness import matching_costs
from repro.bipartite.gale_shapley import gale_shapley
from repro.kpartite.fairness import solve_smp_fair
from repro.model.examples import figure2_smp_instance
from repro.model.generators import random_smp


def figure2_demo() -> None:
    print("=" * 60)
    print("Figure 2's deadlock instance (2 men, 2 women)")
    print("=" * 60)
    inst = figure2_smp_instance()
    print(inst.format_preferences())
    for policy in ("man_optimal", "woman_optimal", "alternate"):
        r = solve_smp_fair(inst, policy=policy)
        pairs = ", ".join(f"(m{i}, w{j})" for i, j in enumerate(r.matching))
        print(
            f"{policy:14s}: {pairs}   man-cost={r.costs.proposer} "
            f"woman-cost={r.costs.responder}"
        )
    print()


def market_sweep(n: int = 40, trials: int = 25) -> None:
    print("=" * 60)
    print(f"random markets: n={n}, {trials} trials, mean costs")
    print("=" * 60)
    rows: dict[str, list] = {
        "gs_man_proposing": [],
        "man_optimal": [],
        "woman_optimal": [],
        "alternate": [],
    }
    for seed in range(trials):
        inst = random_smp(n, seed=seed)
        view = inst.bipartite_view(0, 1)
        gs = gale_shapley(view.proposer_prefs, view.responder_prefs)
        rows["gs_man_proposing"].append(
            matching_costs(view.proposer_prefs, view.responder_prefs, gs.matching)
        )
        for policy in ("man_optimal", "woman_optimal", "alternate"):
            rows[policy].append(solve_smp_fair(inst, policy=policy).costs)

    header = f"{'policy':18s} {'man':>8s} {'woman':>8s} {'gap':>8s} {'total':>8s}"
    print(header)
    print("-" * len(header))
    for policy, costs in rows.items():
        man = np.mean([c.proposer for c in costs])
        woman = np.mean([c.responder for c in costs])
        gap = np.mean([c.sex_equality for c in costs])
        total = np.mean([c.egalitarian for c in costs])
        print(f"{policy:18s} {man:8.1f} {woman:8.1f} {gap:8.1f} {total:8.1f}")

    print(
        "\nreading: man-proposing GS and 'man_optimal' coincide; the\n"
        "alternating policy trades a little proposer happiness for a\n"
        "much smaller man/woman gap — the paper's procedural fairness."
    )


if __name__ == "__main__":
    figure2_demo()
    market_sweep()
