"""E19 (extension) — incremental re-binding under preference churn.

The paper's ideal-environment assumption (static population, fixed
preferences) relaxed: a preference update touches at most one binding
edge, so refreshing the matching re-runs one GS instead of k-1.

Measured quantities:
* bindings reused vs re-run under random single-list churn (expected
  reuse fraction = (k-2)/(k-1) for updates on bound pairs, higher once
  unbound-pair updates are included);
* wall-clock of incremental refresh vs from-scratch Algorithm 1.
"""

import time

from repro.core.binding_tree import BindingTree
from repro.core.dynamic import DynamicBindingSession
from repro.core.iterative_binding import iterative_binding
from repro.model.generators import master_list_instance, random_instance
from repro.model.members import Member
from repro.utils.rng import as_rng

from benchmarks.conftest import print_table


def test_e19_reuse_fraction(benchmark):
    k, n, updates = 8, 16, 60

    def run():
        rng = as_rng(0)
        session = DynamicBindingSession(random_instance(k, n, seed=1))
        session.matching()
        for _ in range(updates):
            g = int(rng.integers(k))
            h = (g + 1 + int(rng.integers(k - 1))) % k
            session.update_preferences(
                Member(g, int(rng.integers(n))), h, rng.permutation(n).tolist()
            )
            session.matching()
        return dict(session.stats)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    total = stats["bindings_run"] + stats["bindings_reused"]
    reuse = stats["bindings_reused"] / total
    print_table(
        f"E19 churn reuse (k={k}, n={n}, {updates} updates, chain tree)",
        ["bindings run", "bindings reused", "reuse fraction"],
        [[stats["bindings_run"], stats["bindings_reused"], round(reuse, 3)]],
    )
    # a chain binds k-1 of the k(k-1)/2 gender pairs; unbound updates
    # cost nothing and bound updates re-run exactly one edge, so reuse
    # must dominate strongly
    assert reuse > 0.8
    # correctness spot-check against from-scratch
    rng = as_rng(5)
    session = DynamicBindingSession(random_instance(4, 6, seed=2))
    for _ in range(10):
        g = int(rng.integers(4))
        h = (g + 1) % 4
        session.update_preferences(
            Member(g, int(rng.integers(6))), h, rng.permutation(6).tolist()
        )
    assert session.matching() == iterative_binding(
        session.instance(), session.tree
    ).matching


def test_e19_refresh_latency(benchmark):
    """One bound-pair update: incremental refresh vs full Algorithm 1
    on a compute-heavy (master-list) workload."""
    k, n = 6, 128
    inst = master_list_instance(k, n, seed=3, noise=0.2)
    tree = BindingTree.chain(k)
    session = DynamicBindingSession(inst, tree=tree)
    session.matching()

    def incremental():
        session.update_preferences(Member(2, 0), 3, list(range(n)))
        return session.matching()

    benchmark(incremental)

    t0 = time.perf_counter()
    iterative_binding(session.instance(), tree)
    full = time.perf_counter() - t0
    t0 = time.perf_counter()
    incremental()
    inc = time.perf_counter() - t0
    print_table(
        f"E19 refresh latency (k={k}, n={n})",
        ["full rebind (s)", "incremental (s)", "ratio"],
        [[round(full, 4), round(inc, 4), round(inc / full, 3)]],
    )
    assert inc < full
