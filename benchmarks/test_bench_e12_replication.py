"""E12 — CREW emulation: log₂Δ replication rounds, then one binding round.

Claims reproduced:
* the doubling schedule reaches Δ copies in ceil(log₂ Δ) EREW-legal
  rounds;
* with Δ copies per gender, all k-1 bindings pass EREW validation in a
  single round, and the end-to-end makespan beats the unreplicated Δ
  rounds once Δ outgrows log₂Δ + 1.
"""

from repro.core.binding_tree import BindingTree
from repro.parallel.pram import one_round_schedule, simulate_schedule
from repro.parallel.replication import replication_rounds, replication_schedule
from repro.parallel.schedule import greedy_tree_schedule

from benchmarks.conftest import print_table


def test_e12_replication_rounds(benchmark):
    def run():
        return {delta: replication_schedule(delta) for delta in (2, 3, 4, 8, 16)}

    plans = benchmark(run)
    rows = []
    for delta, plan in plans.items():
        assert plan.n_rounds == replication_rounds(delta)
        assert plan.target_copies >= delta
        rows.append([delta, plan.n_rounds, plan.target_copies])
    print_table(
        "E12 replication: copies via doubling",
        ["Δ", "rounds (=⌈log₂Δ⌉)", "copies"],
        rows,
    )


def test_e12_one_round_binding_after_replication(benchmark):
    n = 16
    rows = []

    def run():
        out = []
        for k in (4, 6, 10, 16):
            tree = BindingTree.star(k)  # Δ = k-1, the worst shape
            delta = tree.max_degree
            plain = simulate_schedule(greedy_tree_schedule(tree), n=n)
            replicated = simulate_schedule(
                one_round_schedule(tree), model="EREW", copies=delta, n=n
            )
            # replication rounds cost one copy pass each; model the copy
            # cost as negligible next to n² bindings, but count rounds.
            total_rounds = replication_rounds(delta) + replicated.n_rounds
            out.append((k, delta, plain.n_rounds, total_rounds,
                        plain.makespan, replicated.makespan))
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, delta, plain_rounds, repl_rounds, plain_mk, repl_mk in data:
        assert plain_rounds == delta
        assert repl_mk == n * n  # one concurrent binding round
        if delta >= 4:
            assert repl_rounds < plain_rounds  # log Δ + 1 < Δ
        rows.append([k, delta, plain_rounds, repl_rounds,
                     int(plain_mk), int(repl_mk)])
    print_table(
        "E12 star tree: plain EREW vs replicated (binding makespan, n=16)",
        ["k", "Δ", "plain rounds", "log₂Δ+1 rounds", "plain makespan", "replicated"],
        rows,
    )
