"""E20 (extension) — the binding-tree design space and GS strategy facts.

Two ablations rounding out the evaluation:

* **tree search** — Section IV.B's "different trees, different
  matchings" turned into an optimization: how much happiness does
  picking the best of all k^(k-2) trees (and optionally all 2^(k-1)
  orientations) buy over the default chain?
* **strategy** — the mechanism-design facts behind the paper's
  fairness concern: proposers can never gain by misreporting
  (verified exhaustively), responders occasionally can (rate measured).
"""

import numpy as np

from repro.analysis.metrics import kary_costs
from repro.bipartite.strategy import best_misreport, proposer_truthfulness_holds
from repro.core.binding_tree import BindingTree
from repro.core.iterative_binding import iterative_binding
from repro.core.tree_search import best_binding_tree
from repro.model.generators import random_instance, random_smp

from benchmarks.conftest import print_table


def test_e20_tree_search_gain(benchmark):
    trials = 8
    k, n = 4, 6

    def run():
        rows = []
        for seed in range(trials):
            inst = random_instance(k, n, seed=seed)
            chain = kary_costs(
                iterative_binding(inst, BindingTree.chain(k)).matching
            ).egalitarian
            trees_only = best_binding_tree(inst).score
            with_orient = best_binding_tree(inst, orientations=True).score
            rows.append([seed, chain, int(trees_only), int(with_orient)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for _, chain, trees_only, with_orient in rows:
        assert trees_only <= chain
        assert with_orient <= trees_only
    mean_gain = np.mean([(r[1] - r[3]) / r[1] for r in rows if r[1]])
    print_table(
        f"E20 egalitarian cost by tree choice (k={k}, n={n})",
        ["seed", "default chain", "best of 16 trees", "best incl. orientations"],
        rows,
    )
    print(f"mean relative gain of full search vs chain: {mean_gain:.1%}")


def test_e20_proposer_truthfulness(benchmark):
    trials = 6

    def run():
        return all(
            proposer_truthfulness_holds(
                *(lambda v: (v.proposer_prefs, v.responder_prefs))(
                    random_smp(4, seed=seed).bipartite_view(0, 1)
                )
            )
            for seed in range(trials)
        )

    assert benchmark.pedantic(run, rounds=1, iterations=1) is True
    print_table(
        "E20 proposer truthfulness (exhaustive misreport search)",
        ["markets", "proposers per market", "profitable lies"],
        [[trials, 4, 0]],
    )


def test_e20_responder_manipulability_rate(benchmark):
    markets = 25
    n = 4

    def run():
        gains = 0
        agents = 0
        for seed in range(2000, 2000 + markets):
            inst = random_smp(n, seed=seed)
            view = inst.bipartite_view(0, 1)
            for j in range(n):
                agents += 1
                if best_misreport(
                    view.proposer_prefs, view.responder_prefs,
                    side="responder", agent=j,
                ).gain > 0:
                    gains += 1
        return gains, agents

    gains, agents = benchmark.pedantic(run, rounds=1, iterations=1)
    assert gains > 0  # manipulability exists (e.g. seed 2003, responder 1)
    print_table(
        f"E20 responder manipulability (n={n}, {markets} random markets)",
        ["responders checked", "profitable lies", "rate"],
        [[agents, gains, f"{gains / agents:.1%}"]],
    )
