"""E16 (extension) — the NP-complete comparators vs Algorithm 1.

The paper's positioning claim, made executable: the cited
multi-dimensional SMP formulations (cyclic preferences, combination
preferences — both NP-complete in general, the latter without
guaranteed existence) versus the paper's k-ary model (polynomial,
always solvable by Theorem 2).

Measured quantities:
* existence rate of stable matchings per model on random instances;
* runtime growth of the exact searches vs Algorithm 1 at the same n.
"""

import time

from repro.baselines.combination3dsm import (
    random_combination_instance,
    solve_combination_exhaustive,
)
from repro.baselines.cyclic3dsm import (
    cyclic_from_kpartite,
    is_stable_cyclic,
    solve_cyclic_exhaustive,
)
from repro.core.binding_tree import BindingTree
from repro.core.iterative_binding import iterative_binding
from repro.core.stability import is_stable_kary
from repro.model.generators import random_instance

from benchmarks.conftest import print_table


def test_e16_existence_rates(benchmark):
    trials = 40

    def run():
        rows = []
        for n in (2, 3):
            kary_ok = cyclic_ok = comb_ok = 0
            for seed in range(trials):
                kinst = random_instance(3, n, seed=seed)
                res = iterative_binding(kinst, BindingTree.chain(3))
                kary_ok += is_stable_kary(kinst, res.matching)
                cyc = cyclic_from_kpartite(kinst)
                cyclic_ok += solve_cyclic_exhaustive(cyc) is not None
                comb = random_combination_instance(n, seed=seed)
                comb_ok += solve_combination_exhaustive(comb) is not None
            rows.append([n, f"{kary_ok}/{trials}", f"{cyclic_ok}/{trials}",
                         f"{comb_ok}/{trials}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "E16 stable-matching existence on random instances",
        ["n", "k-ary (Alg 1)", "cyclic 3DSM", "combination 3DSM"],
        rows,
    )
    for row in rows:
        assert row[1].startswith(str(40))  # Theorem 2: always
    # combination nonexistence is a property of the model, demonstrated
    # in tests/test_baselines.py over a wider sweep; here we only claim
    # k-ary totality.


def test_e16_runtime_growth(benchmark):
    """Exact-search cost explodes while Algorithm 1 stays polynomial."""

    def run():
        rows = []
        for n in (2, 3, 4, 5):
            kinst = random_instance(3, n, seed=n)
            t0 = time.perf_counter()
            iterative_binding(kinst, BindingTree.chain(3))
            t_kary = time.perf_counter() - t0

            cyc = cyclic_from_kpartite(kinst)
            t0 = time.perf_counter()
            found = solve_cyclic_exhaustive(cyc)
            t_cyc = time.perf_counter() - t0
            rows.append(
                [n, f"{t_kary * 1e3:.2f}", f"{t_cyc * 1e3:.2f}",
                 "yes" if found else "no"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "E16 runtime (ms): Algorithm 1 vs exhaustive cyclic search",
        ["n", "k-ary binding", "cyclic exact search", "cyclic stable found"],
        rows,
    )
    # the exact search at n=5 must already dwarf binding at n=5
    assert float(rows[-1][2]) > float(rows[-1][1])


def test_e16_cyclic_verifier_cost(benchmark):
    """Even *verifying* cyclic stability is O(n³); anchor its cost."""
    kinst = random_instance(3, 24, seed=9)
    cyc = cyclic_from_kpartite(kinst)
    sigma = list(range(24))
    tau = list(range(24))
    benchmark(is_stable_cyclic, cyc, sigma, tau)
