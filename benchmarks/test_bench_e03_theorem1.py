"""E03 — Theorem 1: no stable binary matching for k > 2.

Claims reproduced:
* under the constructed adversarial preference lists, the Irving-based
  detector reports non-existence for every k in {3..6} (and several n);
* exhaustive enumeration confirms the verdict at small sizes;
* a perfect (unstable) binary matching nevertheless exists;
* k = 2 control: the same machinery always finds a stable matching.
"""

import pytest

from repro.analysis.counting import enumerate_perfect_binary_matchings
from repro.kpartite.existence import (
    exhaustive_stable_binary_exists,
    has_stable_binary,
)
from repro.model.generators import random_global_instance, theorem1_instance

from benchmarks.conftest import print_table


def test_e03_theorem1(benchmark):
    cases = [(3, 2), (3, 4), (4, 2), (4, 3), (5, 2), (6, 2), (3, 6)]

    def run():
        return [
            (k, n, has_stable_binary(theorem1_instance(k, n, seed=17 * k + n),
                                     linearization="global"))
            for k, n in cases
        ]

    verdicts = benchmark(run)
    rows = []
    for k, n, stable in verdicts:
        assert stable is False, f"Theorem 1 violated at k={k}, n={n}"
        rows.append([k, n, "no (as claimed)"])
    print_table("E03 Theorem 1: stable binary matching exists?", ["k", "n", "verdict"], rows)

    # cross-check tiny sizes exhaustively
    for k, n in [(3, 2), (4, 2)]:
        inst = theorem1_instance(k, n, seed=5)
        assert not exhaustive_stable_binary_exists(inst, linearization="global")
        # perfect matchings do exist
        assert next(enumerate_perfect_binary_matchings(k, n), None) is not None


def test_e03_k2_control(benchmark):
    def run():
        return all(
            has_stable_binary(random_global_instance(2, 4, seed=s)) for s in range(10)
        )

    assert benchmark(run) is True


@pytest.mark.parametrize("linearization", ["global", "round_robin"])
def test_e03_linearization_ablation(benchmark, linearization):
    """The non-existence is robust to how per-gender lists would be
    linearized — the construction pins the global order anyway."""
    inst = theorem1_instance(3, 2, seed=9)
    result = benchmark(has_stable_binary, inst, linearization=linearization)
    if linearization == "global":
        assert result is False


def test_e03_linearization_solvability_rates(benchmark):
    """Ablation (DESIGN §5): footnote 4's linearization choice shifts
    which random instances are binary-solvable."""
    from repro.model.generators import random_instance

    trials = 40

    def run():
        rates = {"round_robin": 0, "priority": 0}
        disagreements = 0
        for seed in range(trials):
            inst = random_instance(3, 2, seed=5000 + seed)
            verdicts = {
                lin: has_stable_binary(inst, linearization=lin) for lin in rates
            }
            for lin, ok in verdicts.items():
                rates[lin] += ok
            disagreements += len(set(verdicts.values())) > 1
        return rates, disagreements

    (rates, disagreements) = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"E03 solvability by linearization ({trials} random k=3, n=2 instances)",
        ["linearization", "solvable"],
        [[lin, f"{ok}/{trials}"] for lin, ok in rates.items()]
        + [["verdict disagreements", disagreements]],
    )
    # ablation finding: a strict gender hierarchy (priority linearization)
    # makes binary stability *structurally impossible* at k=3 — in every
    # perfect matching some bottom-gender member holds a top-gender
    # partner that a mid-gender member (also stuck with a bottom partner)
    # covets, and the preference for higher genders is mutual.
    assert rates["priority"] == 0
    assert rates["round_robin"] > 0
