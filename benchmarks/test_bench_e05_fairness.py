"""E05 — Figure 2 + procedural fairness of roommates-based SMP solving.

Claims reproduced:
* the Figure 2 instance deadlocks in a 4-cycle after phase 1; breaking
  the men's loop gives the woman-optimal matching, the women's loop the
  man-optimal one;
* alternating loop-breaking lands between the two extremes on random
  instances (procedural fairness), reducing the sex-equality gap
  relative to plain man-proposing GS.
"""

import numpy as np

from repro.bipartite.fairness import matching_costs
from repro.bipartite.gale_shapley import gale_shapley
from repro.kpartite.fairness import solve_smp_fair
from repro.model.examples import figure2_smp_instance
from repro.model.generators import random_smp

from benchmarks.conftest import print_table


def test_e05_figure2_loop_breaking(benchmark):
    inst = figure2_smp_instance()

    def run():
        return (
            solve_smp_fair(inst, policy="man_optimal").matching,
            solve_smp_fair(inst, policy="woman_optimal").matching,
        )

    man_opt, woman_opt = benchmark(run)
    assert man_opt == (0, 1)  # (m, w), (m', w')
    assert woman_opt == (1, 0)  # (m, w'), (m', w)
    print_table(
        "E05 Figure 2 loop breaking",
        ["loop broken", "matching", "favours"],
        [
            ["women's loop", "(m,w), (m',w')", "men"],
            ["men's loop", "(m,w'), (m',w)", "women"],
        ],
    )


def test_e05_procedural_fairness_sweep(benchmark):
    sizes = [8, 16, 32]
    trials = 8

    def run():
        rows = []
        for n in sizes:
            gaps = {"gs": [], "man_optimal": [], "woman_optimal": [], "alternate": []}
            for seed in range(trials):
                inst = random_smp(n, seed=1000 * n + seed)
                view = inst.bipartite_view(0, 1)
                gs = gale_shapley(view.proposer_prefs, view.responder_prefs)
                gaps["gs"].append(
                    matching_costs(
                        view.proposer_prefs, view.responder_prefs, gs.matching
                    ).sex_equality
                )
                for policy in ("man_optimal", "woman_optimal", "alternate"):
                    res = solve_smp_fair(inst, policy=policy)
                    gaps[policy].append(res.costs.sex_equality)
            rows.append(
                [n]
                + [round(float(np.mean(gaps[k])), 1) for k in
                   ("gs", "man_optimal", "woman_optimal", "alternate")]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "E05 mean sex-equality gap (lower = fairer)",
        ["n", "GS (man-prop)", "man-optimal", "woman-optimal", "alternate"],
        rows,
    )
    for row in rows:
        n, gs_gap, mo, wo, alt = row
        assert gs_gap == mo  # man-proposing GS IS man-optimal
        # alternating sits at or below the worse of the two extremes
        assert alt <= max(mo, wo)
