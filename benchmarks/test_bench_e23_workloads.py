"""E23 (extension) — workload characterization: preference structure
drives matching cost.

Ties the instance analytics to the algorithmic quantities the paper
tracks: list agreement / popularity concentration (how much raters
agree) against GS proposal counts and responder happiness.  The classic
theory says correlation breeds competition: as agreement rises from
random (~0) to master-list (1.0), proposals climb toward n(n+1)/2 and
the responder side's happiness collapses.
"""

import numpy as np

from repro.analysis.statistics import instance_stats
from repro.bipartite.fairness import matching_costs
from repro.bipartite.gale_shapley import gale_shapley
from repro.model.generators import master_list_instance, random_instance

from benchmarks.conftest import print_table


def test_e23_agreement_vs_competition(benchmark):
    n, trials = 24, 6
    noises = [None, 3.0, 1.0, 0.3, 0.0]  # None = uniform random

    def run():
        rows = []
        for noise in noises:
            agree_vals, proposals, responder_costs = [], [], []
            for seed in range(trials):
                if noise is None:
                    inst = random_instance(2, n, seed=seed)
                    label = "random"
                else:
                    inst = master_list_instance(2, n, seed=seed, noise=noise)
                    label = f"master noise={noise}"
                stats = instance_stats(inst)
                agree_vals.append(stats.mean_list_agreement)
                view = inst.bipartite_view(0, 1)
                res = gale_shapley(view.proposer_prefs, view.responder_prefs)
                proposals.append(res.proposals)
                responder_costs.append(
                    matching_costs(
                        view.proposer_prefs, view.responder_prefs, res.matching
                    ).responder
                )
            rows.append(
                [
                    label,
                    round(float(np.mean(agree_vals)), 3),
                    round(float(np.mean(proposals)), 1),
                    round(float(np.mean(responder_costs)), 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"E23 agreement -> competition (n={n}, {trials} trials each)",
        ["workload", "mean list agreement", "mean GS proposals", "responder cost"],
        rows,
    )
    # monotone story: agreement and proposals both rise from random to
    # noise-free master lists; the noise-free extreme is exact
    agreements = [row[1] for row in rows]
    assert agreements[0] < 0.2 and agreements[-1] == 1.0
    assert rows[-1][2] == n * (n + 1) / 2
    assert rows[-1][2] > rows[0][2]
    assert rows[-1][3] >= rows[0][3]


def test_e23_stats_cost(benchmark):
    """Timing anchor for the analytics on a larger instance."""
    inst = master_list_instance(3, 32, seed=1, noise=0.5)
    stats = benchmark(instance_stats, inst)
    assert 0 < stats.mean_list_agreement < 1
