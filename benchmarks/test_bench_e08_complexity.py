"""E08 — Theorem 3: the (k-1)·n² proposal bound for iterative binding.

Claims reproduced:
* total proposals never exceed (k-1)·n² across a (k, n) sweep;
* the measured/bound ratio curve (random workloads sit well below the
  bound; the master-list workload approaches n(n+1)/2 per binding).
"""

from repro.analysis.complexity import binding_proposal_sweep
from repro.core.binding_tree import BindingTree
from repro.core.iterative_binding import iterative_binding
from repro.model.generators import master_list_instance, random_instance

from benchmarks.conftest import print_table


def test_e08_theorem3_sweep(benchmark):
    def run():
        return binding_proposal_sweep([2, 3, 4, 6, 8], [8, 16, 32], trials=3, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for row in rows:
        assert row.extra["max"] <= row.bound, row.params
        table.append(
            [
                row.params["k"],
                row.params["n"],
                round(row.measured, 1),
                int(row.bound),
                round(row.ratio, 3),
            ]
        )
    print_table(
        "E08 Theorem 3: proposals vs (k-1)n² bound (random workload)",
        ["k", "n", "mean proposals", "bound", "ratio"],
        table,
    )


def test_e08_master_list_stress(benchmark):
    """Master-list preferences force ~n²/2 proposals per binding."""
    k, n = 4, 32

    def run():
        inst = master_list_instance(k, n, seed=1, noise=0.0)
        return iterative_binding(inst, BindingTree.chain(k))

    result = benchmark(run)
    expected = (k - 1) * n * (n + 1) // 2
    assert result.total_proposals == expected
    assert result.total_proposals <= (k - 1) * n * n
    print_table(
        "E08 master-list workload",
        ["k", "n", "proposals", "exact expectation", "bound"],
        [[k, n, result.total_proposals, expected, (k - 1) * n * n]],
    )


def test_e08_engine_ablation(benchmark):
    """Design ablation: textbook vs vectorized engine — identical
    matching, different constants."""
    inst = random_instance(3, 128, seed=3)
    tree = BindingTree.chain(3)

    def run():
        return iterative_binding(inst, tree, engine="textbook").matching

    textbook = benchmark(run)
    vectorized = iterative_binding(inst, tree, engine="vectorized").matching
    assert textbook == vectorized
