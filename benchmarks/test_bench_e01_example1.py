"""E01 — Example 1: GS outcomes on the paper's two 2x2 instances.

Claims reproduced:
* first preference set: GS yields (m', w), (m, w') ("neither m nor w'
  is happy");
* second set: man-proposing GS yields the man-optimal (m, w), (m', w');
  the woman-optimal (m, w'), (m', w) is stable but never produced —
  the unfairness motivating Section III.B.
"""

from repro.bipartite.enumerate import all_stable_matchings
from repro.bipartite.gale_shapley import gale_shapley
from repro.model.examples import example1_instance

from benchmarks.conftest import print_table


def test_e01_example1(benchmark):
    inst_a = example1_instance("a")
    inst_b = example1_instance("b")
    view_a = inst_a.bipartite_view(0, 1)
    view_b = inst_b.bipartite_view(0, 1)

    def run():
        return (
            gale_shapley(view_a.proposer_prefs, view_a.responder_prefs),
            gale_shapley(view_b.proposer_prefs, view_b.responder_prefs),
        )

    res_a, res_b = benchmark(run)

    # variant a: m rejected at w, settles for w'
    assert res_a.matching == (1, 0)
    # variant b: man-optimal
    assert res_b.matching == (0, 1)
    # the woman-optimal matching exists in the stable set but is not
    # what GS returns
    stable_b = [tuple(m[i] for i in range(2)) for m in all_stable_matchings(
        view_b.proposer_prefs, view_b.responder_prefs)]
    assert (1, 0) in stable_b and len(stable_b) == 2

    print_table(
        "E01 Example 1",
        ["variant", "GS matching (m, m')", "stable set size", "proposals"],
        [
            ["a", f"(w{res_a.matching[0]}, w{res_a.matching[1]})", 1, res_a.proposals],
            ["b", f"(w{res_b.matching[0]}, w{res_b.matching[1]})", len(stable_b), res_b.proposals],
        ],
    )
