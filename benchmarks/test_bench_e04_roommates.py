"""E04 — Section III.B worked lists: the roommates walkthroughs.

Claims reproduced:
* left-hand-side lists: the final matching is (m, u'), (m', w), (w', u);
* right-hand-side lists: u's reduced list empties — no stable matching,
  and the witness the solver reports is u itself.
"""

import pytest

from repro.exceptions import NoStableMatchingError
from repro.kpartite.existence import solve_binary
from repro.model.examples import sec3b_left_instance, sec3b_right_instance
from repro.model.members import Member

from benchmarks.conftest import print_table


def test_e04_left_hand_side(benchmark):
    inst = sec3b_left_instance()
    result = benchmark(solve_binary, inst)
    assert result.pairs == (
        (Member(0, 0), Member(2, 1)),  # (m, u')
        (Member(0, 1), Member(1, 0)),  # (m', w)
        (Member(1, 1), Member(2, 0)),  # (w', u)
    )
    print_table(
        "E04 LHS matching",
        ["pair", "paper"],
        [
            [f"({inst.name(a)}, {inst.name(b)})", expected]
            for (a, b), expected in zip(result.pairs, ["(m, u')", "(m', w)", "(w', u)"])
        ],
    )


def test_e04_right_hand_side(benchmark):
    inst = sec3b_right_instance()

    def run():
        try:
            solve_binary(inst)
        except NoStableMatchingError as exc:
            return exc.witness
        return None

    witness = benchmark(run)
    assert witness == Member(2, 0), "paper: u's reduced list empties"
    print_table(
        "E04 RHS outcome",
        ["verdict", "witness", "paper"],
        [["no stable matching", inst.name(witness), "u (list emptied)"]],
    )


def test_e04_phase1_reduces_lists(benchmark):
    """The LHS walkthrough ends phase 1 with singleton reduced lists."""
    from repro.kpartite.reduction import to_roommates
    from repro.roommates.irving import IrvingSolver

    inst = sec3b_left_instance()
    rm = to_roommates(inst)

    def run():
        solver = IrvingSolver(rm)
        return solver.run_phase1()

    table = benchmark(run)
    assert all(len(lst) == 1 for lst in table.values()), (
        "paper: 'Eventually, each reduced list includes one element'"
    )
