"""E06 — Figure 3 + Theorem 2: iterative binding always yields a stable
k-ary matching.

Claims reproduced:
* the Figure 3 walkthrough: binding M-W then W-U produces
  {(m, w, u), (m', w', u')};
* Theorem 2: across random instances, random trees and both special
  tree shapes, no strong blocking family ever exists in the output.
"""

import pytest

from repro.core.binding_tree import BindingTree
from repro.core.iterative_binding import iterative_binding
from repro.core.stability import find_blocking_family
from repro.model.examples import figure3_instance
from repro.model.generators import random_instance
from repro.model.members import Member

from benchmarks.conftest import print_table


def test_e06_figure3_walkthrough(benchmark):
    inst = figure3_instance()
    result = benchmark(iterative_binding, inst, BindingTree(3, [(0, 1), (1, 2)]))
    assert result.matching.tuples() == [
        (Member(0, 0), Member(1, 0), Member(2, 0)),
        (Member(0, 1), Member(1, 1), Member(2, 1)),
    ]
    print_table(
        "E06 Figure 3 binding M-W, W-U",
        ["family", "paper"],
        [
            ["(m, w, u)", "(m, w, u)"],
            ["(m', w', u')", "(m', w', u')"],
        ],
    )


@pytest.mark.parametrize("k,n", [(3, 4), (4, 6), (5, 4), (6, 3)])
def test_e06_theorem2_sweep(benchmark, k, n):
    trials = 10

    def run():
        stable = 0
        for seed in range(trials):
            inst = random_instance(k, n, seed=seed)
            res = iterative_binding(inst, BindingTree.random(k, seed=seed))
            if find_blocking_family(inst, res.matching) is None:
                stable += 1
        return stable

    stable = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stable == trials, f"Theorem 2 violated at k={k}, n={n}"
    print_table(
        f"E06 Theorem 2 (k={k}, n={n})",
        ["trials", "stable outputs"],
        [[trials, stable]],
    )


def test_e06_binding_throughput(benchmark):
    """Timing anchor: one full Algorithm-1 run at moderate scale."""
    inst = random_instance(4, 64, seed=7)
    tree = BindingTree.chain(4)
    result = benchmark(iterative_binding, inst, tree, engine="vectorized")
    assert result.total_proposals <= 3 * 64 * 64
