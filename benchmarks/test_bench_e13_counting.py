"""E13 — Cayley's formula and Figure 6: counting binding trees.

Claims reproduced:
* there are k^(k-2) distinct binding trees (Cayley), verified by Prüfer
  enumeration for k ≤ 6;
* T(k) = (k-1)·T(k-1) = (k-1)! priority-based binding trees; T(4) = 6
  (Figure 6 draws all six);
* the priority-constructible trees are exactly the bitonic trees.
"""

from repro.analysis.counting import (
    cayley_count,
    count_priority_trees,
    enumerate_labeled_trees,
)
from repro.core.binding_tree import BindingTree
from repro.core.priority_binding import enumerate_priority_trees

from benchmarks.conftest import print_table


def test_e13_cayley(benchmark):
    def run():
        return {k: sum(1 for _ in enumerate_labeled_trees(k)) for k in (2, 3, 4, 5, 6)}

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for k, count in counts.items():
        assert count == cayley_count(k)
        rows.append([k, count, cayley_count(k)])
    print_table("E13 Cayley: labeled trees on k genders", ["k", "enumerated", "k^(k-2)"], rows)


def test_e13_priority_trees(benchmark):
    def run():
        return {k: list(enumerate_priority_trees(k)) for k in (2, 3, 4, 5, 6)}

    trees = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for k, ts in trees.items():
        assert len(ts) == count_priority_trees(k)
        rows.append([k, len(ts), count_priority_trees(k)])
    assert len(trees[4]) == 6  # Figure 6
    print_table(
        "E13 Figure 6: priority-based binding trees",
        ["k", "enumerated", "(k-1)!"],
        rows,
    )


def test_e13_priority_equals_bitonic(benchmark):
    def run():
        out = {}
        for k in (3, 4, 5):
            prio = {t.undirected_edges() for t in enumerate_priority_trees(k)}
            bitonic = {
                t.undirected_edges()
                for t in BindingTree.all_trees(k)
                if t.is_bitonic()
            }
            out[k] = (prio, bitonic)
        return out

    sets = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for k, (prio, bitonic) in sets.items():
        assert prio == bitonic
        rows.append([k, len(prio), cayley_count(k)])
    print_table(
        "E13 bitonic trees among all trees",
        ["k", "bitonic (=priority) trees", "all trees"],
        rows,
    )
