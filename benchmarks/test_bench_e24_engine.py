"""E24 (extension) — the serving path: batched engine vs. serial baseline.

Mertens' *Random Stable Matchings* observes that realistic traffic is
many small random instances with heavy structural repetition — exactly
the regime a content-addressed cache and in-flight dedup exploit.  This
benchmark regenerates that claim on the `repro.engine` serving layer:

* a duplicate-heavy batch performs strictly fewer solver invocations
  than its size (dedup), and a repeated batch performs none (cache);
* the cache-hot pass is measurably faster than the cache-cold pass;
* throughput accounting (solves avoided) is visible in telemetry, so a
  regression in the serving path fails this bench in CI's smoke step.
"""

import time

from repro.core.binding_tree import BindingTree
from repro.core.iterative_binding import iterative_binding
from repro.engine import MatchingEngine, SolveRequest
from repro.model.generators import random_instance

from benchmarks.conftest import print_table


def _duplicate_heavy_batch(n_unique, copies, n=16, k=3):
    instances = [random_instance(k, n, seed=s) for s in range(n_unique)]
    return [
        SolveRequest(instance=instances[i % n_unique], label=f"job{i}")
        for i in range(n_unique * copies)
    ]


def test_e24_dedup_and_cache_beat_serial_baseline(benchmark):
    n_unique, copies = 6, 4  # 75% duplicates
    requests = _duplicate_heavy_batch(n_unique, copies)
    batch_size = len(requests)

    def run():
        rows = []
        # serial baseline: every request solved directly, no serving layer
        start = time.perf_counter()
        for req in requests:
            iterative_binding(req.instance, BindingTree.chain(req.instance.k))
        baseline_s = time.perf_counter() - start
        rows.append(["serial baseline", batch_size, round(baseline_s * 1e3, 2)])

        engine = MatchingEngine()
        start = time.perf_counter()
        engine.solve_many(requests)
        cold_s = time.perf_counter() - start
        cold_solves = engine.telemetry.count("solver_invocations")
        rows.append(["engine cache-cold", cold_solves, round(cold_s * 1e3, 2)])

        start = time.perf_counter()
        results = engine.solve_many(requests)
        hot_s = time.perf_counter() - start
        hot_solves = engine.telemetry.count("solver_invocations") - cold_solves
        rows.append(["engine cache-hot", hot_solves, round(hot_s * 1e3, 2)])
        return rows, engine, results, baseline_s, cold_s, hot_s, cold_solves, hot_solves

    (
        rows,
        engine,
        results,
        baseline_s,
        cold_s,
        hot_s,
        cold_solves,
        hot_solves,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"E24 serving path ({batch_size} jobs, {n_unique} unique)",
        ["path", "solver invocations", "wall ms"],
        rows,
    )
    # the acceptance claims, asserted so CI gates on them:
    assert cold_solves == n_unique
    assert cold_solves < batch_size  # dedup: strictly fewer solves than jobs
    assert hot_solves == 0  # cache-hot repeat solves nothing
    assert engine.telemetry.count("cache_hits") == n_unique
    assert engine.telemetry.count("dedup_hits") == 2 * (batch_size - n_unique)
    assert all(r.ok for r in results)
    assert hot_s < cold_s  # serving a hot batch must be faster than solving it
    assert hot_s < baseline_s  # ... and faster than solving every job serially


def test_e24_cache_hot_throughput(benchmark):
    """Timing anchor: requests/second through a fully warm cache."""
    requests = _duplicate_heavy_batch(4, 2, n=12)
    engine = MatchingEngine()
    engine.solve_many(requests)  # warm

    results = benchmark(engine.solve_many, requests)
    assert all(r.from_cache for r in results)
    assert engine.telemetry.count("solver_invocations") == 4
