"""E21 (extension) — Algorithm 1 as a pure message-passing system.

Corollaries 1 and 2 restated without shared memory: all bindings of a
schedule round run as concurrent GS protocols in one synchronous
network, so the end-to-end *network* round count is the distributed
makespan.  Measured: phases per tree shape, network rounds, messages,
and the parallel saving over one-binding-at-a-time execution.
"""

from repro.core.binding_tree import BindingTree
from repro.distributed.distributed_binding import run_distributed_binding
from repro.model.generators import random_instance
from repro.parallel.schedule import even_odd_chain_schedule, sequential_schedule

from benchmarks.conftest import print_table


def test_e21_phases_by_tree_shape(benchmark):
    n = 8

    def run():
        rows = []
        for k, shape, tree in (
            (6, "chain", BindingTree.chain(6)),
            (6, "star", BindingTree.star(6)),
            (6, "random", BindingTree.random(6, seed=1)),
        ):
            inst = random_instance(k, n, seed=k)
            dist = run_distributed_binding(inst, tree)
            rows.append(
                [
                    shape,
                    tree.max_degree,
                    len(dist.network_rounds),
                    dist.total_network_rounds,
                    dist.messages,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for shape, delta, phases, *_ in rows:
        assert phases == delta  # Corollary 1, message-level
    print_table(
        f"E21 distributed binding phases (k=6, n={n})",
        ["tree", "Δ", "phases", "network rounds", "messages"],
        rows,
    )


def test_e21_parallel_network_saving(benchmark):
    k, n = 8, 10
    inst = random_instance(k, n, seed=3)
    tree = BindingTree.chain(k)

    def run():
        par = run_distributed_binding(inst, tree, schedule=even_odd_chain_schedule(tree))
        seq = run_distributed_binding(inst, tree, schedule=sequential_schedule(tree))
        return par, seq

    par, seq = benchmark.pedantic(run, rounds=1, iterations=1)
    assert par.matching == seq.matching
    assert par.total_network_rounds < seq.total_network_rounds
    print_table(
        f"E21 network makespan, chain k={k}, n={n}",
        ["schedule", "phases", "network rounds", "messages"],
        [
            ["even-odd (Cor. 2)", len(par.network_rounds), par.total_network_rounds,
             par.messages],
            ["sequential", len(seq.network_rounds), seq.total_network_rounds,
             seq.messages],
        ],
    )
