"""E15 — background bound: distributed GS solves the SMP in ≤ n²
accumulated proposals.

Claims reproduced:
* distributed and sequential GS produce identical matchings with
  identical proposal counts under the round-synchronous schedule;
* proposals stay ≤ n² across workloads; the master-list family tracks
  n(n+1)/2, i.e. the Θ(n²) growth that Theorem 3 inherits.
"""

import pytest

from repro.analysis.complexity import gs_proposal_sweep
from repro.bipartite.gale_shapley import gale_shapley
from repro.distributed.distributed_gs import run_distributed_gs
from repro.model.generators import identical_preferences_smp, random_smp

from benchmarks.conftest import print_table


def test_e15_proposal_sweep(benchmark):
    def run():
        rows = {}
        for workload in ("random", "identical", "cyclic"):
            rows[workload] = gs_proposal_sweep(
                [8, 16, 32, 64, 128], trials=3, seed=0, workload=workload
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for workload, series in rows.items():
        for row in series:
            assert row.extra["max"] <= row.bound
            table.append(
                [workload, row.params["n"], round(row.measured, 1),
                 int(row.bound), round(row.ratio, 3)]
            )
    print_table(
        "E15 GS proposals vs n² bound",
        ["workload", "n", "mean proposals", "n²", "ratio"],
        table,
    )
    # master list == n(n+1)/2 exactly
    for row in rows["identical"]:
        n = row.params["n"]
        assert row.measured == n * (n + 1) / 2


@pytest.mark.parametrize("n", [8, 24])
def test_e15_distributed_accounting(benchmark, n):
    inst = random_smp(n, seed=n)
    view = inst.bipartite_view(0, 1)

    def run():
        return run_distributed_gs(view.proposer_prefs, view.responder_prefs)

    report = benchmark.pedantic(run, rounds=1, iterations=2)
    seq = gale_shapley(view.proposer_prefs, view.responder_prefs, engine="rounds")
    assert report.matching == seq.matching
    assert report.proposals == seq.proposals
    assert report.proposals <= n * n
    print_table(
        f"E15 distributed GS (n={n})",
        ["rounds", "messages", "proposals", "n² bound"],
        [[report.rounds, report.messages, report.proposals, n * n]],
    )


def test_e15_gs_scaling(benchmark):
    """Timing anchor for the vectorized engine at n=512."""
    inst = random_smp(512, seed=2)
    view = inst.bipartite_view(0, 1)
    res = benchmark(
        gale_shapley, view.proposer_prefs, view.responder_prefs, engine="vectorized"
    )
    assert res.proposals <= 512 * 512
