"""E18 (extension) — quorum-relaxed weakened stability.

The paper's conclusion proposes "quorum-based approaches to relax
unstable conditions" as future work.  With our formalization
(:func:`repro.core.stability.find_quorum_blocking_family`), the quorum q
interpolates the blocking-family strength: q >= k' is the (mutual)
weakened condition of Theorem 5, smaller q admits strictly more
blocking families.

Measured quantities on bitonic-tree (Algorithm 2) outputs:
* violation rate by quorum — 0 at every q >= 2 and rampant at q = 1;
* monotonicity of the stability verdict in q.

The q >= 2 safety is not a coincidence but a *provable refinement* of
Theorem 5: if two groups are willing, at least one of them does not
contain the highest-priority gender, so (rooting the bitonic tree at
that gender) its lead's tree-parent lies outside the group; the willing
group's mutual conditions then make (parent member, lead) a blocking
pair of that binding edge — contradiction.  Only q = 1 escapes: the
lone willing group may be the root's own, where no such parent exists.
"""

from repro.core.priority_binding import priority_binding
from repro.core.stability import find_quorum_blocking_family

from repro.model.generators import random_instance

from benchmarks.conftest import print_table


def test_e18_quorum_sweep(benchmark):
    k, n, trials = 4, 3, 30

    def run():
        violations = {q: 0 for q in (1, 2, 3, 4)}
        for seed in range(trials):
            inst = random_instance(k, n, seed=seed)
            matching = priority_binding(inst).matching
            for q in violations:
                if find_quorum_blocking_family(inst, matching, quorum=q) is not None:
                    violations[q] += 1
        return violations

    violations = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"E18 quorum-blocking of Algorithm-2 outputs (k={k}, n={n}, {trials} trials)",
        ["quorum q", "unstable outputs"],
        [[q, v] for q, v in sorted(violations.items())],
    )
    assert violations[k] == 0, "full quorum = Theorem 5 guarantee"
    assert violations[1] >= violations[2] >= violations[k], "monotone in q"
    assert violations[1] > 0, "quorum 1 must break the guarantee"
    # refinement (see module docstring): two willing groups always
    # induce a blocking pair on a bitonic-tree edge, so q >= 2 is safe
    assert violations[2] == 0 and violations[3] == 0


def test_e18_quorum_oracle_cost(benchmark):
    """Timing anchor for the exhaustive quorum oracle."""
    inst = random_instance(4, 4, seed=5)
    matching = priority_binding(inst).matching
    witness = benchmark(find_quorum_blocking_family, inst, matching, 4)
    assert witness is None  # Theorem 5 at full quorum
