"""Shared helpers for the experiment benchmarks.

Each ``test_bench_eNN_*`` module regenerates one paper artifact (table,
figure, worked example or theorem claim) listed in DESIGN.md's
per-experiment index.  Conventions:

* the paper's *claim* is asserted, so a failing shape fails the bench;
* the regenerated rows/series are printed via :func:`print_table`
  (visible with ``pytest benchmarks/ --benchmark-only -s``) and recorded
  in EXPERIMENTS.md;
* the core computation runs under the ``benchmark`` fixture so
  pytest-benchmark reports timings.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.report import format_table


def print_table(title: str, header: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Render a small fixed-width table to stdout (library formatter)."""
    print()
    print(format_table(title, header, rows))
