"""E14 — Figure 5 + Theorem 5: weakened blocking families and bitonic trees.

Claims reproduced:
* Figure 5(a): a non-bitonic binding tree can leave a *weakened*
  blocking family in the output (concrete searched instance);
* Figure 5(b) / Theorem 5: a bitonic tree never does — verified over a
  random sweep under the proof-faithful "mutual" semantics;
* reproduction finding: under the paper's *literal* lead-only text the
  theorem fails; the sweep quantifies how often.
"""

from repro.core.binding_tree import BindingTree
from repro.core.iterative_binding import iterative_binding
from repro.core.priority_binding import priority_binding
from repro.core.stability import (
    find_weakened_blocking_family,
    is_stable_kary,
)
from repro.model.examples import FIG5_BAD_TREE, FIG5_GOOD_TREE, figure5_scenario
from repro.model.generators import random_instance

from benchmarks.conftest import print_table


def test_e14_figure5_scenario(benchmark):
    inst, witness = figure5_scenario()
    bad = BindingTree(4, FIG5_BAD_TREE)
    good = BindingTree(4, FIG5_GOOD_TREE)

    def run():
        bad_m = iterative_binding(inst, bad).matching
        good_m = iterative_binding(inst, good).matching
        return (
            find_weakened_blocking_family(inst, bad_m),
            find_weakened_blocking_family(inst, good_m),
            bad_m,
            good_m,
        )

    bad_w, good_w, bad_m, good_m = benchmark(run)
    assert not bad.is_bitonic() and good.is_bitonic()
    assert bad_w is not None, "Figure 5(a): weakened blocking family survives"
    assert good_w is None, "Figure 5(b)/Theorem 5: bitonic tree is safe"
    # Theorem 2 still holds for both trees
    assert is_stable_kary(inst, bad_m) and is_stable_kary(inst, good_m)
    print_table(
        "E14 Figure 5 scenario (k=4, n=2)",
        ["tree", "bitonic", "weakened blocking family"],
        [
            ["(a) 4-1-2-3", "no", ", ".join(inst.name(m) for m in bad_w.members)],
            ["(b) 1-3-4-2", "yes", "none"],
        ],
    )


def test_e14_theorem5_sweep(benchmark):
    trials = 60
    bad = BindingTree(4, FIG5_BAD_TREE)

    def run():
        mutual_bad = mutual_good = literal_good = 0
        for seed in range(trials):
            inst = random_instance(4, 3, seed=seed)
            good_m = priority_binding(inst).matching
            bad_m = iterative_binding(inst, bad).matching
            if find_weakened_blocking_family(inst, bad_m, semantics="mutual"):
                mutual_bad += 1
            if find_weakened_blocking_family(inst, good_m, semantics="mutual"):
                mutual_good += 1
            if find_weakened_blocking_family(inst, good_m, semantics="literal"):
                literal_good += 1
        return mutual_bad, mutual_good, literal_good

    mutual_bad, mutual_good, literal_good = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert mutual_good == 0, "Theorem 5 must hold under mutual semantics"
    assert mutual_bad > 0, "non-bitonic trees must fail sometimes"
    assert literal_good > 0, "reproduction finding: literal text breaks Thm 5"
    print_table(
        f"E14 weakened-instability rate over {trials} random k=4, n=3 instances",
        ["tree / semantics", "violations"],
        [
            ["non-bitonic, mutual", mutual_bad],
            ["bitonic (Alg 2), mutual", mutual_good],
            ["bitonic (Alg 2), literal text", literal_good],
        ],
    )
