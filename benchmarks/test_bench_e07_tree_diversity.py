"""E07 — Section IV.B: different binding trees, different stable matchings.

Claims reproduced:
* the Figure 3 instance: bindings (M-U, U-W) give {(m, w', u'),
  (m', w, u)} and (M-U, M-W) give {(m, w, u'), (m', w', u)} — distinct
  from the (M-W, W-U) result;
* over all k^(k-2) trees on a random instance, several distinct stable
  matchings arise (and per Cayley there are k^(k-2) trees to try);
* ablation: edge orientation (who proposes) shifts happiness toward
  the proposer side.
"""

from repro.analysis.complexity import tree_diversity
from repro.analysis.counting import cayley_count
from repro.analysis.metrics import kary_gender_costs
from repro.core.binding_tree import BindingTree
from repro.core.iterative_binding import iterative_binding
from repro.model.examples import figure3_instance
from repro.model.generators import random_instance
from repro.model.members import Member

from benchmarks.conftest import print_table


def test_e07_figure3_tree_variants(benchmark):
    inst = figure3_instance()

    def run():
        return {
            "M-W,W-U": iterative_binding(inst, BindingTree(3, [(0, 1), (1, 2)])).matching,
            "M-U,U-W": iterative_binding(inst, BindingTree(3, [(0, 2), (2, 1)])).matching,
            "M-U,M-W": iterative_binding(inst, BindingTree(3, [(0, 2), (0, 1)])).matching,
        }

    matchings = benchmark(run)
    assert matchings["M-U,U-W"].tuples() == [
        (Member(0, 0), Member(1, 1), Member(2, 1)),  # (m, w', u')
        (Member(0, 1), Member(1, 0), Member(2, 0)),  # (m', w, u)
    ]
    assert matchings["M-U,M-W"].tuples() == [
        (Member(0, 0), Member(1, 0), Member(2, 1)),  # (m, w, u')
        (Member(0, 1), Member(1, 1), Member(2, 0)),  # (m', w', u)
    ]
    distinct = len({tuple(m.tuples()) for m in matchings.values()})
    assert distinct == 3
    print_table(
        "E07 Figure 3 under different binding trees",
        ["bindings", "families"],
        [[name, m.format().replace("\n", "  ")] for name, m in matchings.items()],
    )


def test_e07_diversity_across_all_trees(benchmark):
    def run():
        return [tree_diversity(k, 4, seed=11) for k in (3, 4)]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for rep in reports:
        assert rep["trees_tried"] == cayley_count(rep["k"])
        assert rep["distinct_matchings"] >= 2
        rows.append([rep["k"], rep["trees_tried"], rep["distinct_matchings"]])
    print_table(
        "E07 matching diversity over all binding trees (n=4)",
        ["k", "trees (k^(k-2))", "distinct stable matchings"],
        rows,
    )


def test_e07_orientation_ablation(benchmark):
    """Proposer-optimality: orienting the single k=2 binding toward a
    gender lowers that gender's cost on average."""
    trials = 20

    def run():
        a_cost_when_proposing = 0
        a_cost_when_responding = 0
        for seed in range(trials):
            inst = random_instance(2, 12, seed=seed)
            fwd = iterative_binding(inst, BindingTree(2, [(0, 1)])).matching
            rev = iterative_binding(inst, BindingTree(2, [(1, 0)])).matching
            a_cost_when_proposing += kary_gender_costs(fwd)[0]
            a_cost_when_responding += kary_gender_costs(rev)[0]
        return a_cost_when_proposing, a_cost_when_responding

    proposing, responding = benchmark.pedantic(run, rounds=1, iterations=1)
    assert proposing <= responding
    print_table(
        "E07 orientation ablation (gender-0 total rank cost, 20 trials)",
        ["gender 0 proposes", "gender 0 responds"],
        [[proposing, responding]],
    )
