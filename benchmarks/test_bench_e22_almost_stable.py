"""E22 (extension) — life after Theorem 1: almost-stable matchings.

When no stable binary matching exists (the Theorem 1 societies), how
close can a perfect matching get?  Measured: the provably-minimum
blocking-pair count of the adversarial family across (k, n), and how
often cheap local search reaches that optimum.
"""

from repro.kpartite.almost_stable import (
    min_blocking_matching_exact,
    min_blocking_matching_local,
)
from repro.model.generators import theorem1_instance

from benchmarks.conftest import print_table


def test_e22_minimum_instability_of_theorem1_family(benchmark):
    cases = [(3, 2), (4, 2), (3, 4)]

    def run():
        rows = []
        for k, n in cases:
            inst = theorem1_instance(k, n, seed=31 * k + n)
            exact = min_blocking_matching_exact(inst, linearization="global")
            rows.append([k, n, exact.blocking_count, exact.evaluated])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, n, blocking, _ in rows:
        assert blocking >= 1  # Theorem 1: never perfectly stable
    print_table(
        "E22 minimum blocking pairs of the Theorem 1 family (exact)",
        ["k", "n", "min blocking pairs", "matchings enumerated"],
        rows,
    )


def test_e22_local_search_quality(benchmark):
    trials = 8
    k, n = 3, 2

    def run():
        hits = 0
        gaps = []
        for seed in range(trials):
            inst = theorem1_instance(k, n, seed=seed)
            exact = min_blocking_matching_exact(inst, linearization="global")
            local = min_blocking_matching_local(
                inst, linearization="global", restarts=8, seed=seed
            )
            gaps.append(local.blocking_count - exact.blocking_count)
            hits += local.blocking_count == exact.blocking_count
        return hits, gaps

    hits, gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(g >= 0 for g in gaps)
    print_table(
        f"E22 local search vs exact optimum ({trials} Theorem-1 instances)",
        ["optimum matched", "mean gap"],
        [[f"{hits}/{trials}", round(sum(gaps) / len(gaps), 2)]],
    )
    assert hits >= trials // 2


def test_e22_larger_instance_feasible(benchmark):
    """Local search scales where enumeration cannot (k=5, n=4: the
    exact space has ~10^8 pairings)."""
    inst = theorem1_instance(5, 4, seed=9)

    def run():
        return min_blocking_matching_local(
            inst, linearization="global", restarts=2, max_steps=40, seed=0
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.blocking_count >= 1
    print_table(
        "E22 local search at k=5, n=4",
        ["blocking pairs (incumbent)", "candidates scored"],
        [[result.blocking_count, result.evaluated]],
    )
