"""E11 — Corollary 2 / Figure 4: even-odd chain scheduling and real
parallel execution.

Claims reproduced:
* the even-odd pairing completes any chain's k-1 bindings in exactly
  2 rounds;
* real wall-clock: a process pool running each round's bindings
  concurrently beats the serial baseline at sufficient n (the GIL makes
  *threads* useless for this CPU-bound work, which we also measure —
  the documented substitution for the paper's PRAM speedup claim).
"""

import pytest

from repro.core.binding_tree import BindingTree
from repro.model.generators import random_instance
from repro.parallel.executor import run_bindings_parallel
from repro.parallel.schedule import even_odd_chain_schedule

from benchmarks.conftest import print_table


@pytest.mark.parametrize("k", [4, 6, 8])
def test_e11_even_odd_two_rounds(benchmark, k):
    inst = random_instance(k, 16, seed=k)
    tree = BindingTree.chain(k)
    schedule = even_odd_chain_schedule(tree)
    assert schedule.n_rounds == 2

    report = benchmark(
        run_bindings_parallel, inst, tree, schedule=schedule, backend="serial"
    )
    assert len(report.round_seconds) == 2
    print_table(
        f"E11 even-odd schedule (k={k})",
        ["round", "bindings"],
        [[i + 1, len(r)] for i, r in enumerate(schedule.rounds)],
    )


@pytest.mark.slow
def test_e11_wall_clock_speedup(benchmark):
    """Serial vs process-parallel execution of one round of bindings.

    Uses the master-list workload (~n²/2 proposals per binding) so the
    Gale-Shapley compute dominates pool startup and argument pickling;
    random instances cost only ~n·ln n proposals and would drown the
    parallelism in overhead.
    """
    from repro.model.generators import master_list_instance

    k, n = 5, 700
    inst = master_list_instance(k, n, seed=1, noise=0.0)
    tree = BindingTree.chain(k)
    schedule = even_odd_chain_schedule(tree)

    serial = run_bindings_parallel(inst, tree, schedule=schedule, backend="serial")

    def run_process():
        return run_bindings_parallel(
            inst, tree, schedule=schedule, backend="process", max_workers=k - 1
        )

    proc = benchmark.pedantic(run_process, rounds=1, iterations=1, warmup_rounds=0)
    assert proc.matching == serial.matching

    thread = run_bindings_parallel(
        inst, tree, schedule=schedule, backend="thread", max_workers=k - 1
    )
    assert thread.matching == serial.matching

    import os

    cpus = len(os.sched_getaffinity(0))
    print_table(
        f"E11 wall clock (k={k}, n={n}, textbook engine, {cpus} CPU(s))",
        ["backend", "seconds"],
        [
            ["serial", round(serial.total_seconds, 3)],
            ["process pool", round(proc.total_seconds, 3)],
            ["thread pool (GIL-bound)", round(thread.total_seconds, 3)],
        ],
    )
    if cpus >= 2:
        # with real cores, two concurrent bindings per round must beat
        # serial execution on this compute-bound workload
        assert proc.total_seconds < serial.total_seconds * 1.05
    else:
        print(
            "NOTE: single-CPU environment — no physical parallelism is\n"
            "possible, so the process pool can only add overhead here.\n"
            "The model-level speedups (E10/E12) quantify the parallel\n"
            "claims independently of the host's core count."
        )
