"""E17 (extension) — the stable-matching lattice and egalitarian optima.

Extends E05: the roommates machinery's rotations generate the *entire*
lattice of stable matchings, so instead of merely alternating
loop-breaking sides we can pick the globally best compromise.

Measured quantities:
* lattice sizes and rotation counts (cyclic family: n matchings, n-1
  rotations);
* egalitarian-optimal cost vs man-optimal / woman-optimal / alternating
  policies.
"""

import numpy as np

from repro.bipartite.fairness import matching_costs
from repro.bipartite.gale_shapley import gale_shapley
from repro.bipartite.lattice import (
    all_rotations,
    count_stable_matchings_lattice,
    egalitarian_stable_matching,
    minimum_regret_stable_matching,
    sex_equal_stable_matching,
)
from repro.kpartite.fairness import solve_smp_fair
from repro.model.generators import cyclic_smp, random_smp

from benchmarks.conftest import print_table


def test_e17_lattice_structure(benchmark):
    def run():
        rows = []
        for n in (4, 6, 8, 10):
            v = cyclic_smp(n).bipartite_view(0, 1)
            count = count_stable_matchings_lattice(v.proposer_prefs, v.responder_prefs)
            rots = len(all_rotations(v.proposer_prefs, v.responder_prefs))
            rows.append([f"cyclic n={n}", count, rots])
        for seed in (0, 1, 2):
            v = random_smp(8, seed=seed).bipartite_view(0, 1)
            count = count_stable_matchings_lattice(v.proposer_prefs, v.responder_prefs)
            rots = len(all_rotations(v.proposer_prefs, v.responder_prefs))
            rows.append([f"random n=8 seed={seed}", count, rots])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        if row[0].startswith("cyclic"):
            n = int(row[0].split("=")[1])
            assert row[1] == n and row[2] == n - 1
    print_table(
        "E17 lattice sizes",
        ["instance", "stable matchings", "rotations"],
        rows,
    )


def test_e17_egalitarian_vs_policies(benchmark):
    n, trials = 10, 10

    def run():
        agg = {"man_optimal": [], "woman_optimal": [], "alternate": [],
               "egalitarian": [], "min_regret": [], "sex_equal": []}
        for seed in range(trials):
            inst = random_smp(n, seed=500 + seed)
            v = inst.bipartite_view(0, 1)
            p, r = v.proposer_prefs, v.responder_prefs
            for policy in ("man_optimal", "woman_optimal", "alternate"):
                agg[policy].append(solve_smp_fair(inst, policy=policy).costs.egalitarian)
            _, ecost = egalitarian_stable_matching(p, r)
            agg["egalitarian"].append(ecost)
            m, _ = minimum_regret_stable_matching(p, r)
            agg["min_regret"].append(matching_costs(p, r, list(m)).egalitarian)
            m, _ = sex_equal_stable_matching(p, r)
            agg["sex_equal"].append(matching_costs(p, r, list(m)).egalitarian)
        return agg

    agg = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, round(float(np.mean(vs)), 2)] for k, vs in agg.items()]
    print_table(
        f"E17 mean egalitarian cost over {trials} random n={n} markets",
        ["selector", "mean egalitarian cost"],
        rows,
    )
    # the egalitarian optimum must dominate every policy, per instance
    for policy in ("man_optimal", "woman_optimal", "alternate"):
        for e, other in zip(agg["egalitarian"], agg[policy]):
            assert e <= other


def test_e17_enumeration_throughput(benchmark):
    """Timing anchor: full lattice enumeration on a random market."""
    v = random_smp(12, seed=77).bipartite_view(0, 1)

    def run():
        return count_stable_matchings_lattice(v.proposer_prefs, v.responder_prefs)

    count = benchmark(run)
    assert count >= 1
