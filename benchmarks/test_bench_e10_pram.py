"""E10 — Corollary 1: EREW PRAM binding rounds equal Δ(T).

Claims reproduced:
* for every binding tree shape, the optimal conflict-free schedule uses
  exactly Δ rounds, so the simulated makespan is Δ·n² iteration units
  (k-1 processors, worst-case n² cost per binding);
* the star (Δ = k-1) degenerates to the sequential bound (k-1)·n²
  while the chain (Δ = 2) achieves 2·n².
"""

import pytest

from repro.analysis.complexity import parallel_rounds_sweep
from repro.core.binding_tree import BindingTree
from repro.core.iterative_binding import iterative_binding
from repro.model.generators import random_instance
from repro.parallel.pram import simulate_schedule
from repro.parallel.schedule import greedy_tree_schedule

from benchmarks.conftest import print_table


def test_e10_rounds_equal_delta(benchmark):
    def run():
        return parallel_rounds_sweep([3, 4, 6, 8, 10], n=16, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for row in rows:
        assert row.measured == row.bound  # rounds == Δ
        assert row.extra["makespan"] <= row.extra["makespan_bound"]
        table.append(
            [
                row.params["k"],
                row.params["shape"],
                int(row.bound),
                int(row.measured),
                int(row.extra["makespan"]),
                int(row.extra["makespan_bound"]),
            ]
        )
    print_table(
        "E10 Corollary 1: EREW rounds and makespan (n=16)",
        ["k", "tree", "Δ", "rounds", "makespan", "Δ·n² bound"],
        table,
    )


def test_e10_measured_costs(benchmark):
    """Same simulation but with *measured* proposal counts as costs."""
    k, n = 6, 32
    inst = random_instance(k, n, seed=4)
    tree = BindingTree.chain(k)
    result = iterative_binding(inst, tree)
    costs = {
        edge: float(res.proposals)
        for edge, res in zip(tree.edges, result.edge_results)
    }

    def run():
        return simulate_schedule(greedy_tree_schedule(tree), cost=costs)

    report = benchmark(run)
    assert report.makespan <= result.total_proposals  # parallelism helps
    assert report.speedup > 1
    print_table(
        "E10 measured-cost simulation (chain, k=6, n=32)",
        ["total work", "makespan", "speedup"],
        [[int(report.total_work), int(report.makespan), round(report.speedup, 2)]],
    )
