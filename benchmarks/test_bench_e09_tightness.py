"""E09 — Theorem 4: k-1 binding rounds is tight.

Claims reproduced:
* **upper direction** (more than k-1 bindings): with the paper's cyclic
  preference orders, the three pairwise-stable bindings of the cycle
  M-W, W-U, U-M are mutually inconsistent — no way to compose them into
  families;
* **lower direction** (fewer than k-1 bindings): an unbound component
  attached obliviously is destabilized by adversarial cross-component
  preferences;
* reproduction finding: the *strong* reading of the lower direction
  ("some instance makes every completion unstable") is false at
  k=3, n=2 — verified exhaustively over all 4^6 essentially distinct
  instances.
"""

import itertools

import pytest

from repro.bipartite.enumerate import all_stable_matchings
from repro.core.kary_matching import KAryMatching
from repro.core.stability import find_blocking_family
from repro.bipartite.gale_shapley import gale_shapley
from repro.model.generators import (
    component_adversarial_instance,
    exhaustive_component_search,
    theorem4_cyclic_instance,
)
from repro.model.members import Member

from benchmarks.conftest import print_table


def test_e09_cycle_bindings_inconsistent(benchmark):
    """k bindings force a cycle; the cyclic instance admits no
    consistent composition of its three stable bindings."""
    inst = theorem4_cyclic_instance()
    edges = [(0, 1), (1, 2), (2, 0)]

    def run():
        per_edge = []
        for g, h in edges:
            view = inst.bipartite_view(g, h)
            per_edge.append(
                list(all_stable_matchings(view.proposer_prefs, view.responder_prefs))
            )
        consistent = 0
        for mw, wu, um in itertools.product(*per_edge):
            if all(um[wu[mw[i]]] == i for i in range(inst.n)):
                consistent += 1
        return [len(x) for x in per_edge], consistent

    sizes, consistent = benchmark(run)
    assert consistent == 0
    print_table(
        "E09a cyclic bindings M-W, W-U, U-M",
        ["edge", "stable matchings"],
        [["M-W", sizes[0]], ["W-U", sizes[1]], ["U-M", sizes[2]],
         ["consistent triples", consistent]],
    )


@pytest.mark.parametrize("n", [2, 3, 4])
def test_e09_oblivious_completion_unstable(benchmark, n):
    """k-2 bindings: the adversary defeats the oblivious attachment.

    Uses the library's forest-binding API: bind genders 0-1 only, then
    attach gender 2 obliviously by index."""
    from repro.core.forest_binding import (
        BindingForest,
        complete_matching,
        forest_binding,
    )

    inst = component_adversarial_instance(n)

    def run():
        partial = forest_binding(inst, BindingForest(3, [(0, 1)]))
        matching = complete_matching(inst, partial, policy="by_index")
        return find_blocking_family(inst, matching)

    witness = benchmark(run)
    assert witness is not None
    print_table(
        f"E09b oblivious completion (n={n})",
        ["blocking family", "source families"],
        [[
            ", ".join(inst.name(m) for m in witness.members),
            witness.source_families,
        ]],
    )


@pytest.mark.slow
def test_e09_strong_reading_impossible(benchmark):
    """Reproduction finding: no k=3, n=2 instance makes EVERY completion
    of every stable 0-1 binding unstable (exhaustive search)."""
    result = benchmark.pedantic(exhaustive_component_search, rounds=1, iterations=1)
    assert result is None
    print_table(
        "E09c exhaustive search for a universally-uncompletable instance",
        ["search space", "found"],
        [["4^6 = 4096 instances x all completions", "none (strong reading false)"]],
    )
