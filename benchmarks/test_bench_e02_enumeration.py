"""E02 — Figure 1 / Example 2: counting structures of K(2,2,2).

Claims reproduced:
* the balanced tripartite graph on 2+2+2 nodes has exactly 8 perfect
  binary pairing choices (the paper lists all eight);
* it has exactly 4 possible ternary (3-ary) matchings.
"""

from repro.analysis.counting import (
    count_perfect_binary_matchings,
    enumerate_kary_matchings,
)

from benchmarks.conftest import print_table


def test_e02_example2_counts(benchmark):
    def run():
        binary = count_perfect_binary_matchings(3, 2)
        ternary = len(list(enumerate_kary_matchings(3, 2)))
        return binary, ternary

    binary, ternary = benchmark(run)
    assert binary == 8
    assert ternary == 4

    rows = [["K(2,2,2)", binary, ternary]]
    # extended sweep: same counts for slightly larger graphs
    for k, n in [(3, 3), (4, 2)]:
        rows.append(
            [
                f"K({','.join([str(n)] * k)})",
                count_perfect_binary_matchings(k, n),
                len(list(enumerate_kary_matchings(k, n))),
            ]
        )
    print_table(
        "E02 Example 2 enumeration",
        ["graph", "binary pairings", "k-ary matchings"],
        rows,
    )
