"""Legacy setup shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (which must build a wheel) fail; keeping a setup.py lets
``pip install -e .`` use the classic ``setup.py develop`` path.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
